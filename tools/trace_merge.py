#!/usr/bin/env python3
"""Stitch per-process qbs Chrome trace dumps into one timeline.

Each qbs process dumps its own trace (qbs_cli --trace_out, or the admin
endpoint's /trace.json) with pid 1 and its own monotonic clock. This
tool merges several such files into a single Chrome trace_event JSON
loadable in about:tracing or https://ui.perfetto.dev: every input file
becomes its own pid (with a process_name metadata row), and spans keep
the trace_id / span_id / parent_span_id args the v4 wire protocol
propagated, so one distributed operation reads as one tree across
processes.

Clocks are NOT synchronized across processes — each process's
MonotonicMicros starts at its own process start. --align shifts every
file so its earliest event starts at 0, which lines processes up well
enough to eyeball concurrency; leave it off to keep raw timestamps.

Usage:
  tools/trace_merge.py client.json broker.json db.json -o merged.json
  tools/trace_merge.py --trace-id <hex32> a.json b.json   # one trace only
  tools/trace_merge.py --self-test

Exit status: 0 on success (self-test included), 1 on merge errors,
2 on usage errors. Unresolved parent_span_id links (a parent span that
was overwritten in its process's ring buffer, or a file not passed in)
are reported on stderr but do not fail the merge.
"""

import argparse
import json
import os
import sys
import tempfile


def load_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    return events


def process_name_of(events, path):
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            name = event.get("args", {}).get("name")
            if name:
                return name
    return os.path.splitext(os.path.basename(path))[0]


def merge(paths, trace_id=None, align=False):
    """Returns (merged_doc, unresolved_parent_count)."""
    merged = []
    span_ids = set()
    parents = []  # (parent_span_id, process_name, event_name)
    for pid, path in enumerate(paths, start=1):
        events = load_trace(path)
        name = process_name_of(events, path)
        merged.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        spans = [e for e in events if e.get("ph") == "X"]
        if trace_id is not None:
            spans = [e for e in spans
                     if e.get("args", {}).get("trace_id") == trace_id]
        shift = 0
        if align and spans:
            shift = min(e.get("ts", 0) for e in spans)
        for event in spans:
            event = dict(event)
            event["pid"] = pid
            if shift:
                event["ts"] = event.get("ts", 0) - shift
            merged.append(event)
            args = event.get("args", {})
            if "span_id" in args:
                span_ids.add(args["span_id"])
            parent = args.get("parent_span_id")
            if parent is not None:
                parents.append((parent, name, event.get("name", "?")))
    unresolved = 0
    for parent, process, event_name in parents:
        if parent not in span_ids:
            unresolved += 1
            print(f"trace_merge: unresolved parent {parent} of "
                  f"'{event_name}' in {process} (span evicted or its "
                  f"process's dump not passed in)", file=sys.stderr)
    return {"displayTimeUnit": "ms", "traceEvents": merged}, unresolved


# --- self test -----------------------------------------------------------

def _fake_dump(process, spans):
    events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
               "args": {"name": process}}]
    for name, ts, dur, span, parent in spans:
        args = {"trace_id": "ab" * 16, "span_id": span}
        if parent:
            args["parent_span_id"] = parent
        events.append({"name": name, "cat": "qbs", "ph": "X", "ts": ts,
                       "dur": dur, "pid": 1, "tid": 1, "args": args})
    return {"displayTimeUnit": "ms", "traceEvents": events}


def self_test():
    failures = []

    def expect(condition, label):
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        client = os.path.join(tmp, "client.json")
        server = os.path.join(tmp, "server.json")
        with open(client, "w") as f:
            json.dump(_fake_dump("qbs select", [
                ("net.rpc/select", 100, 50, "aaaa", None)]), f)
        with open(server, "w") as f:
            json.dump(_fake_dump("qbs serve-broker", [
                ("net.serve/select", 5, 40, "bbbb", "aaaa"),
                ("broker.select/cori", 10, 30, "cccc", "bbbb")]), f)

        doc, unresolved = merge([client, server])
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        metas = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        expect(len(spans) == 3, "all spans merged")
        expect(unresolved == 0, "cross-file parent link resolves")
        expect({e["pid"] for e in spans} == {1, 2},
               "each file gets its own pid")
        expect(len(metas) == 2 and
               {m["args"]["name"] for m in metas} ==
               {"qbs select", "qbs serve-broker"},
               "process names carried over")
        expect("broker.select/cori" in names, "span names survive")
        expect(json.loads(json.dumps(doc)) == doc, "output is valid JSON")

        doc, _ = merge([client, server], trace_id="00" * 16)
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        expect(len(spans) == 0, "--trace-id filters foreign traces")

        _, unresolved = merge([server])
        expect(unresolved == 1,
               "missing parent file reported as unresolved")

        doc, _ = merge([client, server], align=True)
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        expect(min(e["ts"] for e in spans if e["pid"] == 1) == 0 and
               min(e["ts"] for e in spans if e["pid"] == 2) == 0,
               "--align rebases each file to 0")

    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="per-process trace dumps")
    parser.add_argument("-o", "--out", default=None,
                        help="output path (default: stdout)")
    parser.add_argument("--trace-id", default=None,
                        help="keep only spans of this 32-hex-digit trace")
    parser.add_argument("--align", action="store_true",
                        help="rebase each file's earliest span to ts=0")
    parser.add_argument("--self-test", action="store_true",
                        help="verify merging on synthesized dumps")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.files:
        parser.print_usage(sys.stderr)
        return 2
    try:
        doc, _ = merge(args.files, trace_id=args.trace_id, align=args.align)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace_merge: {error}", file=sys.stderr)
        return 1
    text = json.dumps(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        spans = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
        print(f"trace_merge: {spans} spans from {len(args.files)} "
              f"file(s) -> {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Tests for the raw-fd file_io primitives: full-transfer loops over
// partial reads/writes, EINTR resilience, and atomic file replacement.
// These are the paths the model store trusts for its on-disk images.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

#include "storage/file_io.h"
#include "util/fd.h"
#include "util/status.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("qbs_file_io_posix_" + tag + "_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(FdIoTest, ReadFdFullAssemblesPartialReads) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd read_end(fds[0]), write_end(fds[1]);

  // The writer dribbles 64 KiB in 1000-byte chunks with pauses, so the
  // reader's single ReadFdFull call sees many short reads.
  std::string payload(64 * 1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31 + 7);
  }
  std::thread writer([fd = write_end.get(), &payload] {
    for (size_t off = 0; off < payload.size(); off += 1000) {
      size_t n = std::min<size_t>(1000, payload.size() - off);
      ASSERT_TRUE(WriteFdAll(fd, payload.data() + off, n).ok());
      std::this_thread::yield();
    }
  });
  std::string got(payload.size(), '\0');
  Status status = ReadFdFull(read_end.get(), got.data(), got.size());
  writer.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, payload);
}

TEST(FdIoTest, ReadFdFullReportsEarlyEofAsCorruption) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd read_end(fds[0]);
  {
    UniqueFd write_end(fds[1]);
    ASSERT_TRUE(WriteFdAll(write_end.get(), "abc", 3).ok());
  }  // closes the write end: 3 bytes then EOF
  char buf[8];
  Status status = ReadFdFull(read_end.get(), buf, sizeof(buf));
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
}

TEST(FdIoTest, ReadFdFullOfZeroBytesIsOk) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd read_end(fds[0]), write_end(fds[1]);
  EXPECT_TRUE(ReadFdFull(read_end.get(), nullptr, 0).ok());
  EXPECT_TRUE(WriteFdAll(write_end.get(), nullptr, 0).ok());
}

// EINTR: a no-op handler installed WITHOUT SA_RESTART makes blocking
// reads fail with EINTR when signalled. The loops must retry. (If the
// signal misses the blocking window the test still passes — it then
// simply exercises the ordinary path.)
void IgnoreSignal(int) {}

TEST(FdIoTest, ReadFdFullRetriesAfterEintr) {
  struct sigaction sa = {};
  sa.sa_handler = IgnoreSignal;
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_sa = {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd read_end(fds[0]), write_end(fds[1]);

  pthread_t reader_thread = ::pthread_self();
  const std::string payload = "interrupted but intact";
  std::thread interrupter([&, fd = write_end.get()] {
    // Pepper the (blocked) reader with signals, then satisfy the read.
    for (int i = 0; i < 50; ++i) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ASSERT_TRUE(WriteFdAll(fd, payload.data(), payload.size()).ok());
  });
  std::string got(payload.size(), '\0');
  Status status = ReadFdFull(read_end.get(), got.data(), got.size());
  interrupter.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, payload);
  ASSERT_EQ(::sigaction(SIGUSR1, &old_sa, nullptr), 0);
}

TEST(FileIoTest, ReadFileToStringRoundTripsBinary) {
  std::string dir = TempDir("read");
  std::string path = dir + "/blob.bin";
  std::string payload("\x00\x01\xffhello\nworld\x00", 14);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  auto got = ReadFileToString(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
  fs::remove_all(dir);
}

TEST(FileIoTest, ReadFileToStringMissingIsNotFound) {
  auto got = ReadFileToString(TempDir("missing") + "/nope");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(FileIoTest, WriteFileAtomicReplacesAndLeavesNoTemp) {
  std::string dir = TempDir("atomic");
  std::string path = dir + "/target";
  ASSERT_TRUE(WriteFileAtomic(path, "first version").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second version").ok());
  auto got = ReadFileToString(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "second version");
  // No temp files survive a successful write.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(FileIoTest, WriteFileAtomicFailsIntoMissingDirectory) {
  Status s = WriteFileAtomic(TempDir("gone") + "/sub/none", "data");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(FileIoTest, WriteFileAtomicLargePayload) {
  // Larger than any single pipe/write buffer, so the write loop runs
  // multiple rounds.
  std::string dir = TempDir("large");
  std::string path = dir + "/large.bin";
  std::string payload(8 * 1024 * 1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  auto got = ReadFileToString(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace qbs

// Shared fault-injection TextDatabase fakes for tests.
//
// net, service, and sampler tests all need databases that misbehave on a
// deterministic schedule; keeping the fakes here stops each suite from
// growing its own divergent copy.
#ifndef QBS_TESTS_TESTING_FAKE_DATABASES_H_
#define QBS_TESTS_TESTING_FAKE_DATABASES_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "search/text_database.h"
#include "util/status.h"

namespace qbs {
namespace testing {

/// Wraps a database and injects failures on a deterministic schedule.
class FlakyDatabase : public TextDatabase {
 public:
  struct FaultPlan {
    /// Every Nth RunQuery fails (0 = never).
    size_t query_failure_period = 0;
    /// Every Nth FetchDocument fails (0 = never).
    size_t fetch_failure_period = 0;
    /// Status injected on a scheduled failure.
    Status failure = Status::IOError("injected failure");
  };

  FlakyDatabase(TextDatabase* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)) {}

  std::string name() const override { return inner_->name() + "+flaky"; }

  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t max_results) override {
    ++queries_;
    if (plan_.query_failure_period != 0 &&
        queries_ % plan_.query_failure_period == 0) {
      return plan_.failure;
    }
    return inner_->RunQuery(query, max_results);
  }

  Result<std::string> FetchDocument(std::string_view handle) override {
    ++fetches_;
    if (plan_.fetch_failure_period != 0 &&
        fetches_ % plan_.fetch_failure_period == 0) {
      return plan_.failure;
    }
    return inner_->FetchDocument(handle);
  }

  size_t queries() const { return queries_; }
  size_t fetches() const { return fetches_; }

 private:
  TextDatabase* inner_;
  FaultPlan plan_;
  size_t queries_ = 0;
  size_t fetches_ = 0;
};

/// A database whose every interaction fails — an unreachable server.
class DeadDatabase : public TextDatabase {
 public:
  explicit DeadDatabase(std::string name,
                        Status failure = Status::IOError("connection refused"))
      : name_(std::move(name)), failure_(std::move(failure)) {}

  std::string name() const override { return name_; }
  Result<std::vector<SearchHit>> RunQuery(std::string_view, size_t) override {
    return failure_;
  }
  Result<std::string> FetchDocument(std::string_view) override {
    return failure_;
  }

 private:
  std::string name_;
  Status failure_;
};

}  // namespace testing
}  // namespace qbs

#endif  // QBS_TESTS_TESTING_FAKE_DATABASES_H_

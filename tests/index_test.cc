// Tests for varint coding, posting lists, term dictionary, inverted index,
// and document store.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "index/document_store.h"
#include "index/inverted_index.h"
#include "index/postings.h"
#include "index/term_dictionary.h"
#include "index/varint.h"

namespace qbs {
namespace {

class Varint32RoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Varint32RoundTrip, EncodesAndDecodes) {
  std::vector<uint8_t> buf;
  PutVarint32(buf, GetParam());
  size_t pos = 0;
  uint32_t out = 0;
  ASSERT_TRUE(GetVarint32(buf, &pos, &out));
  EXPECT_EQ(out, GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, Varint32RoundTrip,
    ::testing::Values(0u, 1u, 127u, 128u, 129u, 16383u, 16384u, 2097151u,
                      2097152u, 268435455u, 268435456u,
                      std::numeric_limits<uint32_t>::max()));

class Varint64RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Varint64RoundTrip, EncodesAndDecodes) {
  std::vector<uint8_t> buf;
  PutVarint64(buf, GetParam());
  size_t pos = 0;
  uint64_t out = 0;
  ASSERT_TRUE(GetVarint64(buf, &pos, &out));
  EXPECT_EQ(out, GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, Varint64RoundTrip,
    ::testing::Values(0ull, 127ull, 128ull, (1ull << 32), (1ull << 56) - 1,
                      (1ull << 56), std::numeric_limits<uint64_t>::max()));

TEST(VarintTest, SequentialDecoding) {
  std::vector<uint8_t> buf;
  for (uint32_t v : {5u, 300u, 0u, 70000u}) PutVarint32(buf, v);
  size_t pos = 0;
  uint32_t out = 0;
  for (uint32_t expected : {5u, 300u, 0u, 70000u}) {
    ASSERT_TRUE(GetVarint32(buf, &pos, &out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutVarint32(buf, 1'000'000);
  buf.pop_back();
  size_t pos = 0;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(buf, &pos, &out));
}

TEST(VarintTest, EmptyInputFails) {
  std::vector<uint8_t> buf;
  size_t pos = 0;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(buf, &pos, &out));
}

TEST(VarintTest, OverlongEncodingRejected32) {
  // Six continuation bytes cannot be a valid 32-bit varint.
  std::vector<uint8_t> buf = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  size_t pos = 0;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(buf, &pos, &out));
}

TEST(VarintTest, OverflowingFinalByteRejected32) {
  // 5th byte carries bits beyond 2^32.
  std::vector<uint8_t> buf = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  size_t pos = 0;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(buf, &pos, &out));
}

TEST(TermDictionaryTest, AssignsDenseIdsInFirstSeenOrder) {
  TermDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("apple"), 0u);
  EXPECT_EQ(dict.GetOrAdd("bear"), 1u);
  EXPECT_EQ(dict.GetOrAdd("apple"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.TermText(0), "apple");
  EXPECT_EQ(dict.TermText(1), "bear");
}

TEST(TermDictionaryTest, LookupMissReturnsInvalid) {
  TermDictionary dict;
  dict.GetOrAdd("x");
  EXPECT_EQ(dict.Lookup("x"), 0u);
  EXPECT_EQ(dict.Lookup("y"), kInvalidTermId);
  EXPECT_EQ(dict.Lookup(""), kInvalidTermId);
}

TEST(TermDictionaryTest, ManyTermsKeepStableMapping) {
  TermDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(dict.GetOrAdd("term" + std::to_string(i)),
              static_cast<TermId>(i));
  }
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(dict.Lookup("term" + std::to_string(i)),
              static_cast<TermId>(i));
    ASSERT_EQ(dict.TermText(i), "term" + std::to_string(i));
  }
}

TEST(PostingListTest, RoundTripsPostings) {
  PostingList plist;
  plist.Append(0, 3);
  plist.Append(5, 1);
  plist.Append(1000000, 42);
  EXPECT_EQ(plist.doc_frequency(), 3u);
  EXPECT_EQ(plist.collection_frequency(), 46u);
  std::vector<Posting> decoded = plist.Decode();
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], (Posting{0, 3}));
  EXPECT_EQ(decoded[1], (Posting{5, 1}));
  EXPECT_EQ(decoded[2], (Posting{1000000, 42}));
}

TEST(PostingListTest, EmptyListIteratorInvalid) {
  PostingList plist;
  EXPECT_EQ(plist.doc_frequency(), 0u);
  EXPECT_FALSE(plist.NewIterator().Valid());
  EXPECT_TRUE(plist.Decode().empty());
}

TEST(PostingListTest, CompressionBeatsFixedWidth) {
  PostingList plist;
  for (DocId d = 0; d < 1000; ++d) plist.Append(d * 3, 1 + d % 4);
  // Fixed-width would be 8 bytes per posting; deltas of 3 and small tfs
  // take 2 bytes.
  EXPECT_LT(plist.byte_size(), 1000u * 4);
}

TEST(PostingListTest, IteratorMatchesDecode) {
  PostingList plist;
  DocId doc = 0;
  for (int i = 0; i < 500; ++i) {
    doc += 1 + (i * 7) % 100;
    plist.Append(doc, 1 + i % 9);
  }
  std::vector<Posting> expected = plist.Decode();
  size_t i = 0;
  for (auto it = plist.NewIterator(); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(it.Get(), expected[i]);
  }
  EXPECT_EQ(i, expected.size());
}

TEST(InvertedIndexTest, BasicStatistics) {
  InvertedIndex index;
  index.AddDocument({"apple", "bear", "apple"});
  index.AddDocument({"apple"});
  index.AddDocument({"cherry", "bear"});

  EXPECT_EQ(index.num_docs(), 3u);
  EXPECT_EQ(index.unique_terms(), 3u);
  EXPECT_EQ(index.total_terms(), 6u);
  EXPECT_DOUBLE_EQ(index.avg_doc_length(), 2.0);

  TermId apple = index.LookupTerm("apple");
  TermId bear = index.LookupTerm("bear");
  TermId cherry = index.LookupTerm("cherry");
  ASSERT_NE(apple, kInvalidTermId);
  EXPECT_EQ(index.df(apple), 2u);
  EXPECT_EQ(index.ctf(apple), 3u);
  EXPECT_EQ(index.df(bear), 2u);
  EXPECT_EQ(index.ctf(bear), 2u);
  EXPECT_EQ(index.df(cherry), 1u);
  EXPECT_EQ(index.ctf(cherry), 1u);
}

TEST(InvertedIndexTest, PostingsRecordPerDocumentTf) {
  InvertedIndex index;
  index.AddDocument({"x", "x", "y"});
  index.AddDocument({"y"});
  index.AddDocument({"x", "y", "y", "y"});
  TermId x = index.LookupTerm("x");
  TermId y = index.LookupTerm("y");
  auto px = index.postings(x).Decode();
  ASSERT_EQ(px.size(), 2u);
  EXPECT_EQ(px[0], (Posting{0, 2}));
  EXPECT_EQ(px[1], (Posting{2, 1}));
  auto py = index.postings(y).Decode();
  ASSERT_EQ(py.size(), 3u);
  EXPECT_EQ(py[1], (Posting{1, 1}));
  EXPECT_EQ(py[2], (Posting{2, 3}));
}

TEST(InvertedIndexTest, EmptyDocumentAllowed) {
  InvertedIndex index;
  index.AddDocument({});
  EXPECT_EQ(index.num_docs(), 1u);
  EXPECT_EQ(index.doc_length(0), 0u);
  EXPECT_EQ(index.total_terms(), 0u);
}

TEST(InvertedIndexTest, UnknownTermHasZeroStats) {
  InvertedIndex index;
  index.AddDocument({"a"});
  EXPECT_EQ(index.df(12345), 0u);
  EXPECT_EQ(index.ctf(12345), 0u);
  EXPECT_EQ(index.LookupTerm("zzz"), kInvalidTermId);
}

TEST(InvertedIndexTest, ShrinkToFitPreservesContents) {
  InvertedIndex index;
  for (int d = 0; d < 50; ++d) {
    index.AddDocument({"common", "term" + std::to_string(d)});
  }
  index.ShrinkToFit();
  EXPECT_EQ(index.num_docs(), 50u);
  EXPECT_EQ(index.df(index.LookupTerm("common")), 50u);
  // Index remains usable after shrinking.
  index.AddDocument({"common"});
  EXPECT_EQ(index.df(index.LookupTerm("common")), 51u);
}

TEST(InvertedIndexTest, PostingBytesGrowsWithContent) {
  InvertedIndex index;
  size_t before = index.posting_bytes();
  index.AddDocument({"a", "b", "c"});
  EXPECT_GT(index.posting_bytes(), before);
}

TEST(DocumentStoreTest, RoundTripsNameAndText) {
  DocumentStore store;
  DocId a = store.Add("doc-a", "first text");
  DocId b = store.Add("doc-b", "second text, longer");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Name(a), "doc-a");
  EXPECT_EQ(store.Text(a), "first text");
  EXPECT_EQ(store.Name(b), "doc-b");
  EXPECT_EQ(store.Text(b), "second text, longer");
}

TEST(DocumentStoreTest, TextBytesAccumulates) {
  DocumentStore store;
  store.Add("a", "12345");
  store.Add("b", "123");
  EXPECT_EQ(store.text_bytes(), 8u);
}

TEST(DocumentStoreTest, EmptyDocument) {
  DocumentStore store;
  DocId id = store.Add("empty", "");
  EXPECT_EQ(store.Text(id), "");
  EXPECT_EQ(store.Name(id), "empty");
}

TEST(DocumentStoreTest, ManyDocumentsStayAddressable) {
  DocumentStore store;
  for (int i = 0; i < 5000; ++i) {
    store.Add("d" + std::to_string(i), "text " + std::to_string(i));
  }
  EXPECT_EQ(store.Text(4321), "text 4321");
  EXPECT_EQ(store.Name(0), "d0");
  EXPECT_EQ(store.Name(4999), "d4999");
}

}  // namespace
}  // namespace qbs

// Tests for scorers, the searcher, and the SearchEngine/TextDatabase facade.
#include <gtest/gtest.h>

#include <string>

#include "search/scorer.h"
#include "search/search_engine.h"
#include "search/searcher.h"

namespace qbs {
namespace {

CorpusStatsView MakeCorpus(uint32_t num_docs, double avg_dl) {
  CorpusStatsView c;
  c.num_docs = num_docs;
  c.avg_doc_length = avg_dl;
  return c;
}

TEST(ScorerTest, FactoryKnowsAllNames) {
  EXPECT_NE(MakeScorer("inquery"), nullptr);
  EXPECT_NE(MakeScorer("tfidf"), nullptr);
  EXPECT_NE(MakeScorer("bm25"), nullptr);
  EXPECT_EQ(MakeScorer("nope"), nullptr);
  EXPECT_EQ(MakeScorer(""), nullptr);
}

TEST(ScorerTest, InqueryBeliefBounds) {
  InqueryScorer scorer;
  CorpusStatsView corpus = MakeCorpus(1000, 100.0);
  MatchStats match{/*tf=*/5, /*df=*/10, /*doc_length=*/100};
  double s = scorer.Score(match, corpus);
  EXPECT_GT(s, 0.4);  // belief exceeds the default belief on a match
  EXPECT_LT(s, 1.0);
}

TEST(ScorerTest, RarerTermsScoreHigher) {
  CorpusStatsView corpus = MakeCorpus(1000, 100.0);
  MatchStats rare{5, 2, 100};
  MatchStats common{5, 900, 100};
  for (const char* name : {"inquery", "tfidf", "bm25"}) {
    auto scorer = MakeScorer(name);
    EXPECT_GT(scorer->Score(rare, corpus), scorer->Score(common, corpus))
        << name;
  }
}

TEST(ScorerTest, HigherTfScoresHigher) {
  CorpusStatsView corpus = MakeCorpus(1000, 100.0);
  MatchStats low{1, 10, 100};
  MatchStats high{10, 10, 100};
  for (const char* name : {"inquery", "tfidf", "bm25"}) {
    auto scorer = MakeScorer(name);
    EXPECT_GT(scorer->Score(high, corpus), scorer->Score(low, corpus)) << name;
  }
}

TEST(ScorerTest, LongerDocsPenalized) {
  CorpusStatsView corpus = MakeCorpus(1000, 100.0);
  MatchStats short_doc{5, 10, 50};
  MatchStats long_doc{5, 10, 500};
  for (const char* name : {"inquery", "bm25"}) {
    auto scorer = MakeScorer(name);
    EXPECT_GT(scorer->Score(short_doc, corpus), scorer->Score(long_doc, corpus))
        << name;
  }
}

TEST(ScorerTest, ZeroTfScoresZero) {
  CorpusStatsView corpus = MakeCorpus(100, 50.0);
  MatchStats no_match{0, 10, 50};
  for (const char* name : {"inquery", "tfidf", "bm25"}) {
    EXPECT_DOUBLE_EQ(MakeScorer(name)->Score(no_match, corpus), 0.0) << name;
  }
}

class SearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.AddDocument({"apple", "banana"});           // doc 0
    index_.AddDocument({"apple", "apple", "apple"});   // doc 1
    index_.AddDocument({"banana", "cherry"});          // doc 2
    index_.AddDocument({"durian"});                    // doc 3
  }

  InvertedIndex index_;
  TfIdfScorer scorer_;
};

TEST_F(SearcherTest, SingleTermRanksByTf) {
  Searcher searcher(&index_, &scorer_);
  auto results = searcher.Search({"apple"}, 10);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc_id, 1u);  // tf 3 beats tf 1
  EXPECT_EQ(results[1].doc_id, 0u);
  EXPECT_GT(results[0].score, results[1].score);
}

TEST_F(SearcherTest, MultiTermAccumulates) {
  Searcher searcher(&index_, &scorer_);
  auto results = searcher.Search({"banana", "cherry"}, 10);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc_id, 2u);  // matches both terms
  EXPECT_EQ(results[1].doc_id, 0u);
}

TEST_F(SearcherTest, UnknownTermMatchesNothing) {
  Searcher searcher(&index_, &scorer_);
  EXPECT_TRUE(searcher.Search({"zzz"}, 10).empty());
  EXPECT_TRUE(searcher.Search({}, 10).empty());
}

TEST_F(SearcherTest, MaxResultsTruncates) {
  Searcher searcher(&index_, &scorer_);
  auto results = searcher.Search({"apple", "banana", "cherry", "durian"}, 2);
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(SearcherTest, ScratchResetBetweenQueries) {
  Searcher searcher(&index_, &scorer_);
  auto first = searcher.Search({"apple"}, 10);
  auto second = searcher.Search({"apple"}, 10);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].doc_id, second[i].doc_id);
    EXPECT_DOUBLE_EQ(first[i].score, second[i].score);
  }
}

TEST_F(SearcherTest, TieBrokenByDocId) {
  InvertedIndex index;
  index.AddDocument({"same"});
  index.AddDocument({"same"});
  index.AddDocument({"same"});
  TfIdfScorer scorer;
  Searcher searcher(&index, &scorer);
  auto results = searcher.Search({"same"}, 10);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].doc_id, 0u);
  EXPECT_EQ(results[1].doc_id, 1u);
  EXPECT_EQ(results[2].doc_id, 2u);
}

TEST(SearchEngineTest, AddAndQueryEndToEnd) {
  SearchEngine engine("testdb");
  ASSERT_TRUE(engine.AddDocument("d1", "Databases store documents.").ok());
  ASSERT_TRUE(engine
                  .AddDocument("d2",
                               "Database selection ranks databases for a "
                               "query. Databases everywhere.")
                  .ok());
  ASSERT_TRUE(engine.AddDocument("d3", "Cats chase mice.").ok());
  engine.FinishLoading();

  EXPECT_EQ(engine.num_docs(), 3u);
  auto hits = engine.RunQuery("databases", 10);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].handle, "d2");  // more occurrences of the stem
  EXPECT_EQ((*hits)[1].handle, "d1");
}

TEST(SearchEngineTest, QueryGoesThroughDatabaseAnalyzer) {
  SearchEngine engine("testdb");  // InqueryLike analyzer: stems queries
  ASSERT_TRUE(engine.AddDocument("d1", "running runner runs").ok());
  auto hits = engine.RunQuery("RUNNING", 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);  // stemmed + case-folded match
}

TEST(SearchEngineTest, StopwordQueryReturnsNothing) {
  // The paper: a query term the database treats as a stopword retrieves no
  // documents, so it is "effectively discarded" from the learned model.
  SearchEngine engine("testdb");
  ASSERT_TRUE(engine.AddDocument("d1", "the cat and the hat").ok());
  auto hits = engine.RunQuery("the", 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(SearchEngineTest, FetchDocumentReturnsRawText) {
  SearchEngine engine("testdb");
  const std::string raw = "The EXACT original text, unanalyzed!";
  ASSERT_TRUE(engine.AddDocument("d1", raw).ok());
  auto text = engine.FetchDocument("d1");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, raw);
}

TEST(SearchEngineTest, FetchUnknownHandleIsNotFound) {
  SearchEngine engine("testdb");
  auto r = engine.FetchDocument("ghost");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(SearchEngineTest, RejectsDuplicateAndEmptyNames) {
  SearchEngine engine("testdb");
  ASSERT_TRUE(engine.AddDocument("d1", "text").ok());
  EXPECT_TRUE(engine.AddDocument("d1", "other").IsInvalidArgument());
  EXPECT_TRUE(engine.AddDocument("", "text").IsInvalidArgument());
}

TEST(SearchEngineTest, ZeroMaxResultsIsInvalid) {
  SearchEngine engine("testdb");
  EXPECT_TRUE(engine.RunQuery("x", 0).status().IsInvalidArgument());
}

TEST(SearchEngineTest, MaxResultsLimitsHits) {
  SearchEngine engine("testdb");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        engine.AddDocument("d" + std::to_string(i), "common topic words")
            .ok());
  }
  auto hits = engine.RunQuery("topic", 4);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 4u);
}

TEST(SearchEngineTest, ActualLanguageModelUsesIndexTermSpace) {
  SearchEngine engine("testdb");
  ASSERT_TRUE(engine.AddDocument("d1", "the databases are running").ok());
  LanguageModel lm = engine.ActualLanguageModel();
  EXPECT_FALSE(lm.Contains("the"));       // stopped
  EXPECT_TRUE(lm.Contains("databas"));    // stemmed
  EXPECT_EQ(lm.num_docs(), 1u);
}

TEST(SearchEngineTest, CustomAnalyzerChangesIndexing) {
  SearchEngineOptions opts;
  AnalyzerOptions aopts;
  aopts.stem = false;
  aopts.remove_stopwords = false;
  opts.analyzer = Analyzer(aopts);
  SearchEngine engine("rawdb", opts);
  ASSERT_TRUE(engine.AddDocument("d1", "the databases are running").ok());
  LanguageModel lm = engine.ActualLanguageModel();
  EXPECT_TRUE(lm.Contains("the"));
  EXPECT_TRUE(lm.Contains("databases"));
  EXPECT_FALSE(lm.Contains("databas"));
}

TEST(SearchEngineTest, Bm25EngineRanksLikeTfIdfOnSimpleCase) {
  SearchEngineOptions opts;
  opts.scorer = "bm25";
  SearchEngine engine("bm25db", opts);
  ASSERT_TRUE(engine.AddDocument("once", "topic").ok());
  ASSERT_TRUE(engine.AddDocument("thrice", "topic topic topic").ok());
  auto hits = engine.RunQuery("topic", 10);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].handle, "thrice");
}

TEST(SearchEngineTest, PolymorphicUseThroughTextDatabase) {
  SearchEngine engine("poly");
  ASSERT_TRUE(engine.AddDocument("d1", "polymorphism works").ok());
  TextDatabase* db = &engine;
  EXPECT_EQ(db->name(), "poly");
  auto hits = db->RunQuery("polymorphism", 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  auto text = db->FetchDocument((*hits)[0].handle);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "polymorphism works");
}

}  // namespace
}  // namespace qbs

// Tests for the synthetic corpus generator, the TREC parser, and corpus
// statistics. Includes statistical property checks (Zipf frequencies,
// Heaps-law vocabulary growth) that the paper's findings depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/corpus_stats.h"
#include "corpus/synthetic.h"
#include "corpus/trec_parser.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

SyntheticCorpusSpec SmallSpec(uint64_t seed = 7) {
  SyntheticCorpusSpec spec;
  spec.name = "small";
  spec.num_docs = 300;
  spec.vocab_size = 30'000;
  spec.num_topics = 4;
  spec.topic_vocab_size = 300;
  spec.seed = seed;
  return spec;
}

std::vector<std::pair<std::string, std::string>> Generate(
    const SyntheticCorpusSpec& spec) {
  std::vector<std::pair<std::string, std::string>> docs;
  Status s = GenerateSyntheticCorpus(
      spec, [&](const std::string& name, const std::string& text) {
        docs.emplace_back(name, text);
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return docs;
}

TEST(SyntheticWordTest, UniqueForDistinctIds) {
  std::set<std::string> words;
  for (uint64_t id = 0; id < 20000; ++id) {
    ASSERT_TRUE(words.insert(SyntheticWordForId(id)).second) << id;
  }
}

TEST(SyntheticWordTest, AlwaysEligibleAsQueryTerm) {
  for (uint64_t id : {0ull, 1ull, 94ull, 95ull, 10000ull, 4000000ull}) {
    std::string w = SyntheticWordForId(id);
    EXPECT_GE(w.size(), 4u) << id;
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << id << " " << w;
    }
  }
}

TEST(SyntheticCorpusTest, DeterministicForSameSeed) {
  auto a = Generate(SmallSpec(7));
  auto b = Generate(SmallSpec(7));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "doc " << i;
  }
}

TEST(SyntheticCorpusTest, DifferentSeedsDiffer) {
  auto a = Generate(SmallSpec(7));
  auto b = Generate(SmallSpec(8));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a[0].second, b[0].second);
}

TEST(SyntheticCorpusTest, ProducesRequestedDocCount) {
  auto docs = Generate(SmallSpec());
  EXPECT_EQ(docs.size(), 300u);
  EXPECT_EQ(docs[0].first, "small-0");
  EXPECT_EQ(docs[299].first, "small-299");
}

TEST(SyntheticCorpusTest, DocumentsLookLikeText) {
  auto docs = Generate(SmallSpec());
  for (size_t i = 0; i < 10; ++i) {
    const std::string& text = docs[i].second;
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(isupper(static_cast<unsigned char>(text[0])));  // sentence case
    EXPECT_EQ(text.back(), '.');
    EXPECT_NE(text.find(' '), std::string::npos);
  }
}

TEST(SyntheticCorpusTest, ContainsFunctionWords) {
  auto docs = Generate(SmallSpec());
  Analyzer raw = Analyzer::Raw();
  size_t the_count = 0, tokens = 0;
  for (const auto& [name, text] : docs) {
    for (const auto& t : raw.Analyze(text)) {
      ++tokens;
      if (t == "the") ++the_count;
    }
  }
  // "the" is the most frequent function word; expect several percent.
  EXPECT_GT(static_cast<double>(the_count) / tokens, 0.02);
}

TEST(SyntheticCorpusTest, TermFrequenciesAreZipfLike) {
  auto docs = Generate(SmallSpec());
  Analyzer raw = Analyzer::Raw();
  std::map<std::string, uint64_t> counts;
  uint64_t total = 0;
  for (const auto& [name, text] : docs) {
    for (const auto& t : raw.Analyze(text)) {
      ++counts[t];
      ++total;
    }
  }
  std::vector<uint64_t> freqs;
  freqs.reserve(counts.size());
  for (const auto& [t, c] : counts) freqs.push_back(c);
  std::sort(freqs.rbegin(), freqs.rend());

  // Head-heavy: top 100 types carry a large share of tokens.
  uint64_t head = 0;
  for (size_t i = 0; i < 100 && i < freqs.size(); ++i) head += freqs[i];
  EXPECT_GT(static_cast<double>(head) / total, 0.4);

  // Tail-heavy: many types are hapax legomena (paper §4.3.1: "about 50% of
  // the unique terms in a text database occur just once").
  size_t hapax = 0;
  for (uint64_t f : freqs) {
    if (f == 1) ++hapax;
  }
  double hapax_frac = static_cast<double>(hapax) / freqs.size();
  EXPECT_GT(hapax_frac, 0.30);
  EXPECT_LT(hapax_frac, 0.80);
}

TEST(SyntheticCorpusTest, VocabularyGrowsWithoutSaturating) {
  // Heaps' law (paper §3: "vocabulary growth slows, but does not stop").
  SyntheticCorpusSpec spec = SmallSpec();
  spec.num_docs = 600;
  auto docs = Generate(spec);
  Analyzer raw = Analyzer::Raw();
  std::set<std::string> vocab;
  size_t vocab_at_200 = 0, vocab_at_400 = 0, vocab_at_600 = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (const auto& t : raw.Analyze(docs[i].second)) vocab.insert(t);
    if (i + 1 == 200) vocab_at_200 = vocab.size();
    if (i + 1 == 400) vocab_at_400 = vocab.size();
    if (i + 1 == 600) vocab_at_600 = vocab.size();
  }
  size_t growth_1 = vocab_at_400 - vocab_at_200;
  size_t growth_2 = vocab_at_600 - vocab_at_400;
  EXPECT_GT(growth_2, 0u);             // never stops
  EXPECT_LT(growth_2, growth_1 + growth_1 / 2);  // but slows (noise margin)
}

TEST(SyntheticCorpusTest, ThemeTermsAppearProminent) {
  SyntheticCorpusSpec spec = SmallSpec();
  spec.theme_terms = {"excel", "foxpro", "windows"};
  spec.theme_prob = 0.2;
  spec.num_docs = 400;
  auto docs = Generate(spec);
  Analyzer raw = Analyzer::Raw();
  size_t theme_hits = 0;
  for (const auto& [name, text] : docs) {
    for (const auto& t : raw.Analyze(text)) {
      if (t == "excel" || t == "foxpro" || t == "windows") ++theme_hits;
    }
  }
  EXPECT_GT(theme_hits, 100u);
}

TEST(SyntheticCorpusTest, InvalidSpecsRejected) {
  auto sink = [](const std::string&, const std::string&) {};
  SyntheticCorpusSpec spec = SmallSpec();
  spec.num_docs = 0;
  EXPECT_TRUE(GenerateSyntheticCorpus(spec, sink).IsInvalidArgument());
  spec = SmallSpec();
  spec.topic_mix = 1.5;
  EXPECT_TRUE(GenerateSyntheticCorpus(spec, sink).IsInvalidArgument());
  spec = SmallSpec();
  spec.zipf_s = 0.0;
  EXPECT_TRUE(GenerateSyntheticCorpus(spec, sink).IsInvalidArgument());
  spec = SmallSpec();
  spec.num_topics = 0;
  EXPECT_TRUE(GenerateSyntheticCorpus(spec, sink).IsInvalidArgument());
}

TEST(SyntheticCorpusTest, BuildEngineIndexesEverything) {
  SyntheticCorpusSpec spec = SmallSpec();
  spec.num_docs = 100;
  auto engine = BuildSyntheticEngine(spec);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->num_docs(), 100u);
  EXPECT_GT((*engine)->index().unique_terms(), 100u);
}

TEST(SyntheticCorpusTest, PresetsOrderBySizeAndHomogeneity) {
  SyntheticCorpusSpec cacm = CacmLikeSpec();
  SyntheticCorpusSpec wsj = Wsj88LikeSpec();
  SyntheticCorpusSpec trec = Trec123LikeSpec();
  EXPECT_LT(cacm.num_docs, wsj.num_docs);
  EXPECT_LT(wsj.num_docs, trec.num_docs);
  EXPECT_LT(cacm.num_topics, wsj.num_topics);
  EXPECT_LT(wsj.num_topics, trec.num_topics);
  EXPECT_LT(cacm.vocab_size, wsj.vocab_size);
  EXPECT_LT(wsj.vocab_size, trec.vocab_size);
}

TEST(SyntheticCorpusTest, SupportKbHasThemeTerms) {
  SyntheticCorpusSpec kb = SupportKbLikeSpec();
  EXPECT_FALSE(kb.theme_terms.empty());
  EXPECT_NE(std::find(kb.theme_terms.begin(), kb.theme_terms.end(), "excel"),
            kb.theme_terms.end());
}

TEST(ScaledDocCountTest, IdentityWithoutEnvAndFloorOf64) {
  // QBS_SCALE is unset in the test environment.
  EXPECT_EQ(ScaledDocCount(1000), 1000u);
  EXPECT_EQ(ScaledDocCount(10), 64u);  // floor keeps tiny corpora viable
}

// --- TREC parser ---

constexpr const char* kTrecSample = R"(<DOC>
<DOCNO> WSJ880101-0001 </DOCNO>
<HL> Some headline </HL>
<TEXT>
First document body.
Spanning two lines.
</TEXT>
</DOC>
<DOC>
<DOCNO>WSJ880101-0002</DOCNO>
<TEXT> Inline start of text
and more.
</TEXT>
<TEXT>
Second TEXT section.
</TEXT>
</DOC>
)";

TEST(TrecParserTest, ParsesDocumentsAndDocnos) {
  std::stringstream in(kTrecSample);
  std::vector<std::pair<std::string, std::string>> docs;
  auto stats = ParseTrecStream(
      in, [&](const std::string& docno, const std::string& text) {
        docs.emplace_back(docno, text);
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->docs, 2u);
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].first, "WSJ880101-0001");
  EXPECT_NE(docs[0].second.find("First document body."), std::string::npos);
  EXPECT_NE(docs[0].second.find("Spanning two lines."), std::string::npos);
  EXPECT_EQ(docs[0].second.find("Some headline"), std::string::npos);
}

TEST(TrecParserTest, ConcatenatesMultipleTextSections) {
  std::stringstream in(kTrecSample);
  std::vector<std::string> texts;
  auto stats = ParseTrecStream(
      in, [&](const std::string&, const std::string& text) {
        texts.push_back(text);
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(texts[1].find("Inline start of text"), std::string::npos);
  EXPECT_NE(texts[1].find("Second TEXT section."), std::string::npos);
}

TEST(TrecParserTest, MissingDocnoIsCorruption) {
  std::stringstream in("<DOC>\n<TEXT>\nx\n</TEXT>\n</DOC>\n");
  auto stats = ParseTrecStream(in, [](const std::string&, const std::string&) {});
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
}

TEST(TrecParserTest, UnterminatedDocIsCorruption) {
  std::stringstream in("<DOC>\n<DOCNO> D1 </DOCNO>\n<TEXT>\nx\n");
  auto stats = ParseTrecStream(in, [](const std::string&, const std::string&) {});
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
}

TEST(TrecParserTest, EmptyInputIsZeroDocs) {
  std::stringstream in("");
  auto stats = ParseTrecStream(in, [](const std::string&, const std::string&) {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->docs, 0u);
}

TEST(TrecParserTest, MissingFileIsIOError) {
  auto stats = ParseTrecFile("/nonexistent/path/file.sgml",
                             [](const std::string&, const std::string&) {});
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIOError());
}

TEST(CorpusStatsTest, MatchesEngineContents) {
  SearchEngine engine("statdb");
  ASSERT_TRUE(engine.AddDocument("d1", "alpha beta alpha").ok());
  ASSERT_TRUE(engine.AddDocument("d2", "gamma").ok());
  CorpusStats stats = ComputeCorpusStats(engine);
  EXPECT_EQ(stats.name, "statdb");
  EXPECT_EQ(stats.num_docs, 2u);
  EXPECT_EQ(stats.unique_terms, 3u);
  EXPECT_EQ(stats.total_terms, 4u);
  EXPECT_EQ(stats.bytes, std::string("alpha beta alpha").size() +
                             std::string("gamma").size());
  EXPECT_DOUBLE_EQ(stats.avg_doc_length(), 2.0);
}

}  // namespace
}  // namespace qbs

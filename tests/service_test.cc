// Tests for the end-to-end SamplingService orchestrator.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "service/sampling_service.h"
#include "tests/testing/fake_databases.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

using testing::DeadDatabase;

class ServiceTest : public ::testing::Test {
 protected:
  static constexpr size_t kNumDbs = 3;

  static void SetUpTestSuite() {
    engines_ = new std::vector<std::unique_ptr<SearchEngine>>();
    seed_terms_ = new std::vector<std::string>();
    for (size_t i = 0; i < kNumDbs; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.num_docs = 400;
      spec.vocab_size = 30'000;
      spec.num_topics = 3;
      spec.topic_mix = 0.5;
      spec.seed = 8800 + 17 * i;
      auto engine = BuildSyntheticEngine(spec);
      ASSERT_TRUE(engine.ok());
      // Collect seed terms the service can bootstrap with (the synthetic
      // vocabulary contains no real English words).
      LanguageModel actual = (*engine)->ActualLanguageModel();
      for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 2)) {
        seed_terms_->push_back(term);
      }
      engines_->push_back(std::move(*engine));
    }
  }

  static void TearDownTestSuite() {
    delete engines_;
    engines_ = nullptr;
    delete seed_terms_;
    seed_terms_ = nullptr;
  }

  ServiceOptions BaseOptions() {
    ServiceOptions opts;
    opts.sampler.stopping.max_documents = 80;
    opts.seed_terms = *seed_terms_;
    opts.num_threads = 3;
    return opts;
  }

  static std::vector<std::unique_ptr<SearchEngine>>* engines_;
  static std::vector<std::string>* seed_terms_;
};

std::vector<std::unique_ptr<SearchEngine>>* ServiceTest::engines_ = nullptr;
std::vector<std::string>* ServiceTest::seed_terms_ = nullptr;

TEST_F(ServiceTest, RefreshAllSamplesEveryDatabase) {
  SamplingService service(BaseOptions());
  for (auto& engine : *engines_) {
    ASSERT_TRUE(service.AddDatabase(engine.get()).ok());
  }
  ASSERT_TRUE(service.RefreshAll().ok());
  EXPECT_EQ(service.size(), kNumDbs);
  for (const DatabaseState& s : service.state()) {
    EXPECT_TRUE(s.has_model) << s.name;
    EXPECT_EQ(s.documents_examined, 80u) << s.name;
    EXPECT_GT(s.learned.vocabulary_size(), 100u) << s.name;
    EXPECT_TRUE(s.last_status.ok()) << s.name;
  }
}

TEST_F(ServiceTest, SelectRanksRegisteredDatabases) {
  SamplingService service(BaseOptions());
  for (auto& engine : *engines_) {
    ASSERT_TRUE(service.AddDatabase(engine.get()).ok());
  }
  ASSERT_TRUE(service.RefreshAll().ok());

  // Query with a term distinctive to database 0.
  LanguageModel actual0 = (*engines_)[0]->ActualLanguageModel();
  std::string probe;
  for (const auto& [term, score] : actual0.RankedTerms(TermMetric::kCtf, 50)) {
    bool distinctive = true;
    for (size_t j = 1; j < kNumDbs; ++j) {
      // ActualLanguageModel() returns by value; the model must outlive
      // the Find() pointer into it (ASan-caught use-after-free).
      LanguageModel other_model = (*engines_)[j]->ActualLanguageModel();
      const TermStats* other = other_model.Find(term);
      if (other != nullptr && other->ctf * 4 > score) distinctive = false;
    }
    if (distinctive) {
      probe = term;
      break;
    }
  }
  ASSERT_FALSE(probe.empty());

  auto ranking = service.Select(probe);
  ASSERT_TRUE(ranking.ok()) << ranking.status().ToString();
  ASSERT_EQ(ranking->size(), kNumDbs);
  EXPECT_EQ((*ranking)[0].db_name, "svc-0");
}

TEST_F(ServiceTest, SelectBeforeRefreshFails) {
  SamplingService service(BaseOptions());
  ASSERT_TRUE(service.AddDatabase((*engines_)[0].get()).ok());
  auto ranking = service.Select("anything");
  ASSERT_FALSE(ranking.ok());
  EXPECT_TRUE(ranking.status().IsFailedPrecondition());
}

TEST_F(ServiceTest, UnknownRankerRejected) {
  SamplingService service(BaseOptions());
  ASSERT_TRUE(service.AddDatabase((*engines_)[0].get()).ok());
  ASSERT_TRUE(service.RefreshAll().ok());
  EXPECT_TRUE(service.Select("x", "bogus").status().IsInvalidArgument());
}

TEST_F(ServiceTest, DuplicateAndNullDatabasesRejected) {
  SamplingService service(BaseOptions());
  ASSERT_TRUE(service.AddDatabase((*engines_)[0].get()).ok());
  EXPECT_TRUE(
      service.AddDatabase((*engines_)[0].get()).IsInvalidArgument());
  EXPECT_TRUE(service.AddDatabase(nullptr).IsInvalidArgument());
}

TEST_F(ServiceTest, DeadDatabaseReportsErrorOthersSucceed) {
  SamplingService service(BaseOptions());
  DeadDatabase dead("dead-db");
  ASSERT_TRUE(service.AddDatabase(&dead).ok());
  ASSERT_TRUE(service.AddDatabase((*engines_)[0].get()).ok());

  Status status = service.RefreshAll();
  EXPECT_FALSE(status.ok());
  // The healthy database still got its model.
  EXPECT_FALSE(service.state()[0].has_model);
  EXPECT_FALSE(service.state()[0].last_status.ok());
  // The bootstrap probes all *errored* (vs. matching nothing), so the
  // database's real failure code is reported, not NotFound.
  EXPECT_TRUE(service.state()[0].last_status.IsIOError())
      << service.state()[0].last_status.ToString();
  EXPECT_TRUE(service.state()[1].has_model);
}

TEST_F(ServiceTest, OwningAddDatabaseTransfersLifetime) {
  SamplingService service(BaseOptions());
  // The service keeps the database alive; no caller-side storage needed.
  ASSERT_TRUE(
      service
          .AddDatabase(std::make_unique<DeadDatabase>("owned-dead-db"))
          .ok());
  EXPECT_EQ(service.size(), 1u);
  EXPECT_EQ(service.state()[0].name, "owned-dead-db");
  // Duplicate names are rejected through the owning overload too (and
  // the rejected database is simply destroyed).
  EXPECT_TRUE(
      service.AddDatabase(std::make_unique<DeadDatabase>("owned-dead-db"))
          .IsInvalidArgument());
  EXPECT_TRUE(service.AddDatabase(std::unique_ptr<TextDatabase>())
                  .IsInvalidArgument());
  EXPECT_EQ(service.size(), 1u);
}

TEST_F(ServiceTest, RefreshByNameResamples) {
  SamplingService service(BaseOptions());
  ASSERT_TRUE(service.AddDatabase((*engines_)[0].get()).ok());
  ASSERT_TRUE(service.RefreshAll().ok());
  size_t docs_before = service.state()[0].documents_examined;
  ASSERT_TRUE(service.Refresh("svc-0").ok());
  EXPECT_EQ(service.state()[0].documents_examined, docs_before);
  EXPECT_TRUE(service.Refresh("no-such-db").IsNotFound());
}

TEST_F(ServiceTest, ModelsPersistAndWarmStart) {
  fs::path dir = fs::temp_directory_path() / "qbs_service_models_test";
  fs::remove_all(dir);

  ServiceOptions opts = BaseOptions();
  opts.model_dir = dir.string();
  size_t vocab = 0;
  {
    SamplingService service(opts);
    for (auto& engine : *engines_) {
      ASSERT_TRUE(service.AddDatabase(engine.get()).ok());
    }
    ASSERT_TRUE(service.RefreshAll().ok());  // also persists
    vocab = service.state()[0].learned.vocabulary_size();
    ASSERT_GT(vocab, 0u);
  }
  // A fresh service instance warm-starts from disk, without sampling.
  {
    SamplingService service(opts);
    for (auto& engine : *engines_) {
      ASSERT_TRUE(service.AddDatabase(engine.get()).ok());
    }
    ASSERT_TRUE(service.LoadModels().ok());
    EXPECT_TRUE(service.state()[0].has_model);
    EXPECT_EQ(service.state()[0].learned.vocabulary_size(), vocab);
    // Selection works immediately.
    EXPECT_TRUE(service.Select("anything").ok());
  }
  fs::remove_all(dir);
}

TEST_F(ServiceTest, BootstrapFailsWhenNoSeedTermMatches) {
  ServiceOptions opts = BaseOptions();
  opts.seed_terms = {"qqqqzzzz", "xxxxyyyy"};  // retrieve nothing
  SamplingService service(opts);
  ASSERT_TRUE(service.AddDatabase((*engines_)[0].get()).ok());
  Status status = service.RefreshAll();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
}

}  // namespace
}  // namespace qbs

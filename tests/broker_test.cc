// Unit tests for the selection broker subsystem: registry snapshots,
// the sharded LRU result cache, the SelectionBroker read path, and
// admission control. The loopback (socket) half lives in
// broker_server_test.cc under the `net` label.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/result_cache.h"
#include "broker/selection_broker.h"
#include "selection/db_selection.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

// Three databases with clear topical identities (mirrors selection_test).
DatabaseCollection ToyCollection() {
  DatabaseCollection dbs;

  LanguageModel cooking;
  cooking.AddTerm("recipe", 80, 200);
  cooking.AddTerm("flour", 60, 120);
  cooking.AddTerm("oven", 50, 90);
  cooking.AddTerm("court", 1, 1);
  cooking.set_num_docs(100);

  LanguageModel law;
  law.AddTerm("court", 90, 300);
  law.AddTerm("appeal", 70, 150);
  law.AddTerm("ruling", 65, 130);
  law.AddTerm("recipe", 1, 1);
  law.set_num_docs(120);

  LanguageModel sports;
  sports.AddTerm("match", 85, 250);
  sports.AddTerm("court", 40, 60);  // tennis courts
  sports.AddTerm("score", 75, 140);
  sports.set_num_docs(110);

  dbs.Add("cooking", std::move(cooking));
  dbs.Add("law", std::move(law));
  dbs.Add("sports", std::move(sports));
  return dbs;
}

TEST(KnownRankersTest, NamesMatchTheFactory) {
  DatabaseCollection dbs = ToyCollection();
  ASSERT_EQ(KnownRankerNames().size(), 4u);
  for (const std::string& name : KnownRankerNames()) {
    EXPECT_NE(MakeRanker(name, &dbs), nullptr) << name;
  }
  EXPECT_EQ(KnownRankerList(), "cori, bgloss, vgloss, kl");
}

TEST(ModelRegistryTest, StartsWithTheEmptyEpochZeroSnapshot) {
  ModelRegistry registry;
  auto snapshot = registry.Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch(), 0u);
  EXPECT_EQ(snapshot->collection().size(), 0u);
  // Even the empty snapshot carries every ranker: unknown-ranker errors
  // must not depend on whether anything was published yet.
  for (const std::string& name : KnownRankerNames()) {
    EXPECT_NE(snapshot->ranker(name), nullptr) << name;
  }
  EXPECT_EQ(snapshot->ranker("pagerank"), nullptr);
}

TEST(ModelRegistryTest, PublishReturnsMonotonicEpochs) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Publish(ToyCollection()), 1u);
  EXPECT_EQ(registry.Publish(ToyCollection()), 2u);
  EXPECT_EQ(registry.Publish(DatabaseCollection{}), 3u);
  EXPECT_EQ(registry.Snapshot()->epoch(), 3u);
}

TEST(ModelRegistryTest, HeldSnapshotSurvivesLaterPublishesUnchanged) {
  ModelRegistry registry;
  registry.Publish(ToyCollection());
  auto pinned = registry.Snapshot();
  ASSERT_EQ(pinned->epoch(), 1u);
  ASSERT_EQ(pinned->collection().size(), 3u);

  // Publish an empty generation; the pinned snapshot must not notice.
  registry.Publish(DatabaseCollection{});
  EXPECT_EQ(registry.Snapshot()->epoch(), 2u);
  EXPECT_EQ(registry.Snapshot()->collection().size(), 0u);
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->collection().size(), 3u);
  EXPECT_EQ(pinned->ranker("cori")->Rank({"court"}).size(), 3u);
}

TEST(ResultCacheTest, HitAfterPutMissBefore) {
  ResultCache cache;
  auto ranking = std::make_shared<const std::vector<DatabaseScore>>(
      std::vector<DatabaseScore>{{"law", 0.9}});
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Put("k", ranking);
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit, ranking);
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedWithinAShard) {
  // One shard of capacity 2 makes LRU order fully observable.
  ResultCache cache({.num_shards = 1, .capacity_per_shard = 2});
  auto ranking = std::make_shared<const std::vector<DatabaseScore>>();
  cache.Put("a", ranking);
  cache.Put("b", ranking);
  ASSERT_NE(cache.Get("a"), nullptr);  // promotes "a"; "b" is now LRU
  cache.Put("c", ranking);             // evicts "b"
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, PutRefreshesAnExistingKeyWithoutEviction) {
  ResultCache cache({.num_shards = 1, .capacity_per_shard = 2});
  auto old_ranking = std::make_shared<const std::vector<DatabaseScore>>(
      std::vector<DatabaseScore>{{"old", 1.0}});
  auto new_ranking = std::make_shared<const std::vector<DatabaseScore>>(
      std::vector<DatabaseScore>{{"new", 2.0}});
  cache.Put("k", old_ranking);
  cache.Put("k", new_ranking);
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0].db_name, "new");
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCacheTest, KeySeparatesEpochRankerAndTermBoundaries) {
  // Same terms, different epoch or ranker → different keys; and term
  // boundaries must not concatenate ambiguously.
  EXPECT_NE(ResultCache::Key(1, "cori", {"court"}),
            ResultCache::Key(2, "cori", {"court"}));
  EXPECT_NE(ResultCache::Key(1, "cori", {"court"}),
            ResultCache::Key(1, "kl", {"court"}));
  EXPECT_NE(ResultCache::Key(1, "cori", {"ab", "c"}),
            ResultCache::Key(1, "cori", {"a", "bc"}));
  EXPECT_EQ(ResultCache::Key(1, "cori", {"a", "b"}),
            ResultCache::Key(1, "cori", {"a", "b"}));
}

class SelectionBrokerTest : public ::testing::Test {
 protected:
  SelectionBrokerTest() : broker_(&registry_) {}

  ModelRegistry registry_;
  SelectionBroker broker_;
};

TEST_F(SelectionBrokerTest, SelectBeforeAnyPublishFails) {
  auto result = broker_.Select("court appeal", "cori");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST_F(SelectionBrokerTest, UnknownRankerNamesTheValidSet) {
  registry_.Publish(ToyCollection());
  auto result = broker_.Select("court", "pagerank");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("pagerank"), std::string::npos);
  for (const std::string& name : KnownRankerNames()) {
    EXPECT_NE(result.status().message().find(name), std::string::npos)
        << "error message does not list '" << name << "': "
        << result.status().message();
  }
}

TEST_F(SelectionBrokerTest, MatchesADirectlyConstructedRankerExactly) {
  registry_.Publish(ToyCollection());
  const std::string query = "court appeal ruling";
  DatabaseCollection reference = registry_.Snapshot()->collection();
  std::vector<std::string> terms = Analyzer::InqueryLike().Analyze(query);
  for (const std::string& name : KnownRankerNames()) {
    auto ranker = MakeRanker(name, &reference);
    std::vector<DatabaseScore> expected = ranker->Rank(terms);
    auto got = broker_.Select(query, name);
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    EXPECT_EQ(got->epoch, 1u);
    ASSERT_EQ(got->scores.size(), expected.size()) << name;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got->scores[i].db_name, expected[i].db_name) << name;
      EXPECT_EQ(got->scores[i].score, expected[i].score) << name;  // bitwise
    }
  }
}

TEST_F(SelectionBrokerTest, TopKTrimsTheRanking) {
  registry_.Publish(ToyCollection());
  auto all = broker_.Select("court", "cori");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->scores.size(), 3u);
  auto top1 = broker_.Select("court", "cori", 1);
  ASSERT_TRUE(top1.ok());
  ASSERT_EQ(top1->scores.size(), 1u);
  EXPECT_EQ(top1->scores[0].db_name, all->scores[0].db_name);
  // top_k larger than the federation returns everything.
  auto top9 = broker_.Select("court", "cori", 9);
  ASSERT_TRUE(top9.ok());
  EXPECT_EQ(top9->scores.size(), 3u);
}

TEST_F(SelectionBrokerTest, RepeatQueryHitsTheCacheWithIdenticalResult) {
  registry_.Publish(ToyCollection());
  auto first = broker_.Select("court appeal", "cori");
  ASSERT_TRUE(first.ok());
  BrokerStatusInfo before = broker_.BrokerStatus();
  auto second = broker_.Select("court appeal", "cori");
  ASSERT_TRUE(second.ok());
  BrokerStatusInfo after = broker_.BrokerStatus();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  EXPECT_EQ(after.cache_misses, before.cache_misses);
  ASSERT_EQ(second->scores.size(), first->scores.size());
  for (size_t i = 0; i < first->scores.size(); ++i) {
    EXPECT_EQ(second->scores[i].db_name, first->scores[i].db_name);
    EXPECT_EQ(second->scores[i].score, first->scores[i].score);
  }
}

TEST_F(SelectionBrokerTest, NewEpochMissesTheCacheAndReportsItsEpoch) {
  registry_.Publish(ToyCollection());
  ASSERT_TRUE(broker_.Select("court", "cori").ok());
  registry_.Publish(ToyCollection());
  BrokerStatusInfo before = broker_.BrokerStatus();
  auto result = broker_.Select("court", "cori");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epoch, 2u);
  // Keys embed the epoch, so the same query misses after a publish.
  EXPECT_EQ(broker_.BrokerStatus().cache_misses, before.cache_misses + 1);
}

TEST_F(SelectionBrokerTest, BrokerStatusReportsServingState) {
  registry_.Publish(ToyCollection());
  ASSERT_TRUE(broker_.Select("court", "cori").ok());
  ASSERT_TRUE(broker_.Select("court", "cori").ok());
  BrokerStatusInfo info = broker_.BrokerStatus();
  EXPECT_EQ(info.epoch, 1u);
  EXPECT_EQ(info.databases, 3u);
  EXPECT_EQ(info.selects_total, 2u);
  EXPECT_EQ(info.cache_hits, 1u);
  EXPECT_EQ(info.cache_misses, 1u);
  EXPECT_EQ(info.shed_total, 0u);  // admission control lives in the server
}

TEST_F(SelectionBrokerTest, FailedSelectsAreNotCountedAsServed) {
  registry_.Publish(ToyCollection());
  ASSERT_FALSE(broker_.Select("court", "pagerank").ok());
  EXPECT_EQ(broker_.BrokerStatus().selects_total, 0u);
}

TEST(AdmissionControllerTest, BoundsInflightAndCountsShed) {
  AdmissionController admission({.max_inflight = 2, .queue_timeout_us = 0});
  ASSERT_TRUE(admission.Admit());
  ASSERT_TRUE(admission.Admit());
  EXPECT_EQ(admission.inflight(), 2u);
  // Full, zero queue budget: shed immediately.
  EXPECT_FALSE(admission.Admit());
  EXPECT_EQ(admission.shed(), 1u);
  admission.Release();
  EXPECT_TRUE(admission.Admit());
  admission.Release();
  admission.Release();
  EXPECT_EQ(admission.inflight(), 0u);
}

TEST(AdmissionControllerTest, ZeroMaxInflightMeansUnbounded) {
  AdmissionController admission({.max_inflight = 0, .queue_timeout_us = 0});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(admission.Admit());
  }
  EXPECT_EQ(admission.shed(), 0u);
}

}  // namespace
}  // namespace qbs

// Tests for the RNG and distribution samplers, including statistical checks
// on the Zipf sampler (the backbone of synthetic corpus realism).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "util/thread_pool.h"

namespace qbs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next32() == b.Next32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(99);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.Next64());
  a.Seed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next64(), first[i]);
}

TEST(RngTest, UniformBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformBelow(1), 0u);
  }
}

TEST(RngTest, UniformBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformBelow(kBuckets)];
  // Each bucket expects 10000; allow 5% deviation (many sigma).
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.05);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalHasRightMoments) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, LogNormalMedianNearExpMu) {
  Rng rng(19);
  constexpr int kDraws = 50001;
  std::vector<double> xs(kDraws);
  for (double& x : xs) x = rng.LogNormal(4.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + kDraws / 2, xs.end());
  EXPECT_NEAR(xs[kDraws / 2], std::exp(4.0), std::exp(4.0) * 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// --- ZipfSampler ---

TEST(ZipfSamplerTest, SingleElementAlwaysReturnsOne) {
  Rng rng(1);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
  Rng rng(2);
  ZipfSampler zipf(1000, 1.1);
  for (int i = 0; i < 100000; ++i) {
    uint64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

// Empirical frequencies should match P(k) ~ 1/k^s for the head ranks.
TEST(ZipfSamplerTest, HeadFrequenciesFollowPowerLaw) {
  Rng rng(3);
  constexpr double kS = 1.0;
  ZipfSampler zipf(10000, kS);
  constexpr int kDraws = 600000;
  std::vector<int> counts(11, 0);
  int total_head = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t k = zipf.Sample(rng);
    if (k <= 10) {
      ++counts[k];
      ++total_head;
    }
  }
  // count(1)/count(k) should be ~ k^s.
  for (int k = 2; k <= 10; ++k) {
    double ratio = static_cast<double>(counts[1]) / counts[k];
    EXPECT_NEAR(ratio, std::pow(k, kS), std::pow(k, kS) * 0.15)
        << "at rank " << k;
  }
  EXPECT_GT(total_head, kDraws / 4);  // the head carries a lot of mass
}

TEST(ZipfSamplerTest, LargerExponentConcentratesMass) {
  Rng rng(4);
  ZipfSampler flat(100000, 1.01);
  ZipfSampler steep(100000, 1.8);
  int flat_head = 0, steep_head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (flat.Sample(rng) <= 10) ++flat_head;
    if (steep.Sample(rng) <= 10) ++steep_head;
  }
  EXPECT_GT(steep_head, flat_head * 2);
}

TEST(ZipfSamplerTest, MandelbrotShiftFlattensHead) {
  Rng rng(5);
  ZipfSampler unshifted(10000, 1.2, 0.0);
  ZipfSampler shifted(10000, 1.2, 10.0);
  int unshifted_first = 0, shifted_first = 0;
  for (int i = 0; i < 50000; ++i) {
    if (unshifted.Sample(rng) == 1) ++unshifted_first;
    if (shifted.Sample(rng) == 1) ++shifted_first;
  }
  // With q=10 the top rank is much less dominant.
  EXPECT_GT(unshifted_first, shifted_first * 2);
}

TEST(ZipfSamplerTest, ExponentExactlyOneUsesLogBranch) {
  Rng rng(6);
  ZipfSampler zipf(1000, 1.0);
  uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = zipf.Sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
    max_seen = std::max(max_seen, k);
  }
  EXPECT_GT(max_seen, 500u);  // the log branch has a heavy tail
}

// Zipf's-law consequence used by the paper (§4.3.1): with s ~ 1 and a
// vocabulary sampled to saturation, roughly half the *observed* types
// appear once. We verify hapax dominance for a corpus-sized draw.
TEST(ZipfSamplerTest, TailIsHapaxHeavy) {
  Rng rng(7);
  ZipfSampler zipf(2'000'000, 1.15);
  std::unordered_map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(rng)];
  int hapax = 0;
  for (const auto& [rank, c] : counts) {
    if (c == 1) ++hapax;
  }
  double hapax_fraction = static_cast<double>(hapax) / counts.size();
  EXPECT_GT(hapax_fraction, 0.35);
  EXPECT_LT(hapax_fraction, 0.90);
}

// --- AliasSampler ---

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(8);
  AliasSampler alias({1.0, 2.0, 3.0, 4.0});
  constexpr int kDraws = 200000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[alias.Sample(rng)];
  for (int i = 0; i < 4; ++i) {
    double expected = kDraws * (i + 1) / 10.0;
    EXPECT_NEAR(counts[i], expected, expected * 0.05) << "weight index " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(9);
  AliasSampler alias({0.0, 1.0, 0.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(alias.Sample(rng), 1u);
}

TEST(AliasSamplerTest, SingleElement) {
  Rng rng(10);
  AliasSampler alias({5.0});
  EXPECT_EQ(alias.size(), 1u);
  EXPECT_EQ(alias.Sample(rng), 0u);
}

// --- ThreadPool ---

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();
  // Shutdown drained the accepted task...
  EXPECT_EQ(counter.load(), 1);
  // ...and everything submitted afterwards is rejected, not run.
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 1);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> touched(257);
  ThreadPool::ParallelFor(257, 8, [&](size_t i) { touched[i].fetch_add(1); });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndSingleThread) {
  ThreadPool::ParallelFor(0, 4, [](size_t) { FAIL(); });
  int count = 0;
  ThreadPool::ParallelFor(5, 1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace qbs

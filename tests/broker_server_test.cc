// Loopback tests for the broker wire surface: BrokerServer +
// RemoteSelector over real sockets, including the PR's acceptance
// scenario — concurrent remote Selects during active refreshes, with
// every answer verified byte-for-byte against the snapshot of the epoch
// it reports.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/remote_selector.h"
#include "broker/selection_broker.h"
#include "corpus/synthetic.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "service/sampling_service.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

class BrokerServerTest : public ::testing::Test {
 protected:
  static constexpr size_t kNumDbs = 3;

  static void SetUpTestSuite() {
    engines_ = new std::vector<std::unique_ptr<SearchEngine>>();
    seed_terms_ = new std::vector<std::string>();
    for (size_t i = 0; i < kNumDbs; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "brk-" + std::to_string(i);
      spec.num_docs = 300;
      spec.vocab_size = 20'000;
      spec.num_topics = 3;
      spec.topic_mix = 0.5;
      spec.seed = 4400 + 13 * i;
      auto engine = BuildSyntheticEngine(spec);
      ASSERT_TRUE(engine.ok());
      LanguageModel actual = (*engine)->ActualLanguageModel();
      for (const auto& [term, score] :
           actual.RankedTerms(TermMetric::kCtf, 2)) {
        seed_terms_->push_back(term);
      }
      engines_->push_back(std::move(*engine));
    }
  }

  static void TearDownTestSuite() {
    delete engines_;
    engines_ = nullptr;
    delete seed_terms_;
    seed_terms_ = nullptr;
  }

  // A refreshed service over the shared federation.
  std::unique_ptr<SamplingService> MakeRefreshedService() {
    ServiceOptions opts;
    opts.sampler.stopping.max_documents = 40;
    opts.seed_terms = *seed_terms_;
    opts.num_threads = 3;
    auto service = std::make_unique<SamplingService>(opts);
    for (auto& engine : *engines_) {
      EXPECT_TRUE(service->AddDatabase(engine.get()).ok());
    }
    EXPECT_TRUE(service->RefreshAll().ok());
    return service;
  }

  static WireClientOptions ClientOptionsFor(const FrameServer& server) {
    WireClientOptions options;
    options.port = server.port();
    return options;
  }

  static std::vector<std::unique_ptr<SearchEngine>>* engines_;
  static std::vector<std::string>* seed_terms_;
};

std::vector<std::unique_ptr<SearchEngine>>* BrokerServerTest::engines_ =
    nullptr;
std::vector<std::string>* BrokerServerTest::seed_terms_ = nullptr;

TEST_F(BrokerServerTest, SelectOverLoopbackMatchesInProcessSelect) {
  auto service = MakeRefreshedService();
  SelectionBroker broker(&service->registry());
  BrokerServer server(&broker, {});
  ASSERT_TRUE(server.Start().ok());

  RemoteSelector selector(ClientOptionsFor(server));
  ASSERT_TRUE(selector.Connect().ok());
  EXPECT_EQ(selector.negotiated_version(), kWireProtocolVersion);
  EXPECT_EQ(selector.name(), "qbs-broker");

  const std::string query =
      (*seed_terms_)[0] + " " + (*seed_terms_)[2] + " " + (*seed_terms_)[4];
  for (const std::string& ranker : KnownRankerNames()) {
    auto remote = selector.Select(query, ranker);
    ASSERT_TRUE(remote.ok()) << ranker << ": " << remote.status().ToString();
    auto local = service->Select(query, ranker);
    ASSERT_TRUE(local.ok()) << ranker;
    ASSERT_EQ(remote->scores.size(), local->size()) << ranker;
    for (size_t i = 0; i < local->size(); ++i) {
      EXPECT_EQ(remote->scores[i].db_name, (*local)[i].db_name) << ranker;
      // fixed64 on the wire: scores survive bit-exactly.
      EXPECT_EQ(remote->scores[i].score, (*local)[i].score) << ranker;
    }
  }

  auto info = selector.BrokerStatus();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->databases, kNumDbs);
  EXPECT_GE(info->selects_total, KnownRankerNames().size());
}

TEST_F(BrokerServerTest, SelectErrorsCrossTheWireIntact) {
  auto service = MakeRefreshedService();
  SelectionBroker broker(&service->registry());
  BrokerServer server(&broker, {});
  ASSERT_TRUE(server.Start().ok());
  RemoteSelector selector(ClientOptionsFor(server));

  auto unknown = selector.Select("anything", "pagerank");
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsInvalidArgument());
  // The valid set survives serialization — remote operators get the
  // same actionable message local callers do.
  EXPECT_NE(unknown.status().message().find("cori, bgloss, vgloss, kl"),
            std::string::npos)
      << unknown.status().message();
}

// The acceptance scenario: remote Selects racing an active sequence of
// refresh publications. Every answer must carry a published epoch and
// match a from-scratch ranking against that exact snapshot.
TEST_F(BrokerServerTest, ConcurrentSelectsDuringRefreshMatchEverySnapshot) {
  auto service = MakeRefreshedService();
  SelectionBroker broker(&service->registry());
  BrokerServer server(&broker, {});
  ASSERT_TRUE(server.Start().ok());

  // This thread is the only publisher, so capturing the snapshot after
  // each publish records every epoch the run can ever serve.
  std::map<uint64_t, std::shared_ptr<const SelectionSnapshot>> snapshots;
  auto capture = [&] {
    auto snapshot = service->registry().Snapshot();
    snapshots[snapshot->epoch()] = snapshot;
  };
  capture();  // epoch 1, from MakeRefreshedService's RefreshAll

  struct RemoteAnswer {
    std::string query;
    std::string ranker;
    uint64_t epoch;
    std::vector<DatabaseScore> scores;
  };
  const std::vector<std::string> queries = {
      (*seed_terms_)[0] + " " + (*seed_terms_)[3],
      (*seed_terms_)[1],
      (*seed_terms_)[2] + " " + (*seed_terms_)[5] + " " + (*seed_terms_)[4],
  };

  constexpr size_t kClients = 4;
  constexpr size_t kSelectsPerClient = 24;
  std::vector<std::vector<RemoteAnswer>> answers(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RemoteSelector selector(ClientOptionsFor(server));
      for (size_t i = 0; i < kSelectsPerClient; ++i) {
        const std::string& query = queries[(c + i) % queries.size()];
        const std::string& ranker =
            KnownRankerNames()[(c + i) % KnownRankerNames().size()];
        auto result = selector.Select(query, ranker);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        answers[c].push_back(
            {query, ranker, result->epoch, std::move(result->scores)});
      }
    });
  }

  // Re-sample each database while the clients hammer Select; each
  // Refresh publishes a new epoch the clients may land on.
  for (auto& engine : *engines_) {
    ASSERT_TRUE(service->Refresh((*engine).name()).ok());
    capture();
  }
  for (std::thread& t : clients) t.join();

  const Analyzer analyzer = Analyzer::InqueryLike();
  size_t distinct_epochs_served = 0;
  {
    std::vector<bool> seen(snapshots.size() + 2, false);
    for (const auto& per_client : answers) {
      for (const RemoteAnswer& answer : per_client) {
        auto it = snapshots.find(answer.epoch);
        ASSERT_NE(it, snapshots.end())
            << "answer reports unpublished epoch " << answer.epoch;
        const SelectionSnapshot& snapshot = *it->second;
        std::vector<DatabaseScore> expected =
            snapshot.ranker(answer.ranker)->Rank(analyzer.Analyze(answer.query));
        ASSERT_EQ(answer.scores.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(answer.scores[i].db_name, expected[i].db_name)
              << "epoch " << answer.epoch << " ranker " << answer.ranker;
          EXPECT_EQ(answer.scores[i].score, expected[i].score)
              << "epoch " << answer.epoch << " ranker " << answer.ranker;
        }
        if (!seen[answer.epoch]) {
          seen[answer.epoch] = true;
          ++distinct_epochs_served;
        }
      }
    }
  }
  // Sanity: the run actually exercised publication (epoch 1 at minimum;
  // usually several).
  EXPECT_GE(distinct_epochs_served, 1u);
  EXPECT_EQ(service->registry().Snapshot()->epoch(), 1u + kNumDbs);
}

TEST_F(BrokerServerTest, V2PeerNegotiatesDownAndControlMethodsWork) {
  auto service = MakeRefreshedService();
  SelectionBroker broker(&service->registry());
  BrokerServer server(&broker, {});
  ASSERT_TRUE(server.Start().ok());

  // A batching-era (v2) TextDatabase client dialing a broker: version
  // negotiation lands on 2 and control methods work; data methods fail
  // with a self-describing error, not a dropped connection.
  RemoteDatabaseOptions options;
  options.port = server.port();
  options.max_protocol_version = 2;
  RemoteTextDatabase v2_peer(options);
  ASSERT_TRUE(v2_peer.Connect().ok());
  EXPECT_EQ(v2_peer.negotiated_version(), 2u);
  EXPECT_EQ(v2_peer.name(), "qbs-broker");

  auto hits = v2_peer.RunQuery("anything", 3);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsUnimplemented());
  // The connection survives the error: the next call still works.
  EXPECT_EQ(v2_peer.name(), "qbs-broker");
}

TEST_F(BrokerServerTest, RemoteSelectorAgainstADbServerFailsAttributably) {
  SearchEngine* engine = (*engines_)[0].get();

  // Current-version DbServer: the version gate admits the Select frame,
  // and the server answers Unimplemented (it fronts a database).
  DbServer current(engine, {});
  ASSERT_TRUE(current.Start().ok());
  WireClientOptions options;
  options.port = current.port();
  RemoteSelector selector(options);
  auto result = selector.Select("anything", "cori");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnimplemented()) << result.status().ToString();

  // v2-pinned DbServer: negotiation lands below v3 and the client
  // refuses to send the frame at all, naming the version mismatch.
  DbServerOptions old_options;
  old_options.max_protocol_version = 2;
  DbServer old_server(engine, old_options);
  ASSERT_TRUE(old_server.Start().ok());
  WireClientOptions old_client_options;
  old_client_options.port = old_server.port();
  RemoteSelector old_selector(old_client_options);
  auto old_result = old_selector.Select("anything", "cori");
  ASSERT_FALSE(old_result.ok());
  EXPECT_TRUE(old_result.status().IsFailedPrecondition())
      << old_result.status().ToString();
  EXPECT_EQ(old_selector.negotiated_version(), 2u);
}

TEST_F(BrokerServerTest, OverloadShedsWithUnavailableWithoutStallingOthers) {
  auto service = MakeRefreshedService();
  SelectionBroker broker(&service->registry());

  // One Select slot, zero queue budget, and a hook that parks the first
  // admitted Select until released — a deterministic saturation.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  bool first = true;
  BrokerServerOptions server_options;
  server_options.admission.max_inflight = 1;
  server_options.admission.queue_timeout_us = 0;
  server_options.select_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    if (!first) return;
    first = false;
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  BrokerServer server(&broker, server_options);
  ASSERT_TRUE(server.Start().ok());

  // kUnavailable is transient, so the default client would retry into
  // the very overload this test creates; pin every client to one shot.
  WireClientOptions one_shot = ClientOptionsFor(server);
  one_shot.max_attempts = 1;

  std::thread parked([&] {
    RemoteSelector selector(one_shot);
    auto result = selector.Select((*seed_terms_)[0], "cori");
    // Released below; the parked request must complete successfully.
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // The slot is held: a second Select is shed with kUnavailable...
  RemoteSelector shed_client(one_shot);
  auto shed = shed_client.Select((*seed_terms_)[1], "cori");
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();

  // ...while control RPCs on other connections are served, not stalled.
  auto info = shed_client.BrokerStatus();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GE(info->shed_total, 1u);
  EXPECT_EQ(server.shed(), info->shed_total);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  parked.join();
}

}  // namespace
}  // namespace qbs

// Fuzz-style property tests for the varint codec. Postings bytes come
// from disk (storage layer) and are adversarial by assumption; the
// decoder contract is: never crash, never read out of bounds, and return
// false exactly when the input is malformed (truncated, overlong, or
// overflowing). Run under ASan/UBSan via the asan-ubsan preset, where
// "never crash" becomes "never touches memory it shouldn't".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "index/varint.h"
#include "util/random.h"

namespace qbs {
namespace {

// Decodes at `data[0]`; checks a successful decode consumed the whole
// buffer when the buffer holds exactly one encoding.
template <typename T>
struct Codec;

template <>
struct Codec<uint32_t> {
  static void Put(std::vector<uint8_t>& out, uint32_t v) {
    PutVarint32(out, v);
  }
  static bool Get(const std::vector<uint8_t>& data, size_t* pos,
                  uint32_t* v) {
    return GetVarint32(data, pos, v);
  }
  static constexpr int kMaxBytes = 5;
};

template <>
struct Codec<uint64_t> {
  static void Put(std::vector<uint8_t>& out, uint64_t v) {
    PutVarint64(out, v);
  }
  static bool Get(const std::vector<uint8_t>& data, size_t* pos,
                  uint64_t* v) {
    return GetVarint64(data, pos, v);
  }
  static constexpr int kMaxBytes = 10;
};

template <typename T>
class VarintFuzzTest : public ::testing::Test {};

using WidthTypes = ::testing::Types<uint32_t, uint64_t>;
TYPED_TEST_SUITE(VarintFuzzTest, WidthTypes);

TYPED_TEST(VarintFuzzTest, RandomRoundTrips) {
  Rng rng(1234);
  for (int trial = 0; trial < 20'000; ++trial) {
    // Bias toward interesting magnitudes: every bit width is hit.
    int bits = static_cast<int>(rng.UniformBelow(sizeof(TypeParam) * 8 + 1));
    TypeParam value = static_cast<TypeParam>(rng.Next64());
    value = bits == 0 ? 0 : value >> (sizeof(TypeParam) * 8 - bits);

    std::vector<uint8_t> buf;
    Codec<TypeParam>::Put(buf, value);
    ASSERT_LE(buf.size(), static_cast<size_t>(Codec<TypeParam>::kMaxBytes));

    size_t pos = 0;
    TypeParam decoded = 0;
    ASSERT_TRUE(Codec<TypeParam>::Get(buf, &pos, &decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(pos, buf.size()) << "decode must consume the whole encoding";
  }
}

TYPED_TEST(VarintFuzzTest, EveryTruncationFails) {
  Rng rng(99);
  for (int trial = 0; trial < 2'000; ++trial) {
    TypeParam value = static_cast<TypeParam>(rng.Next64());
    std::vector<uint8_t> buf;
    Codec<TypeParam>::Put(buf, value);
    // Every strict prefix of a valid encoding is truncated input.
    for (size_t cut = 0; cut < buf.size(); ++cut) {
      std::vector<uint8_t> prefix(buf.begin(), buf.begin() + cut);
      size_t pos = 0;
      TypeParam decoded = 0;
      EXPECT_FALSE(Codec<TypeParam>::Get(prefix, &pos, &decoded))
          << "prefix of length " << cut << " decoded";
    }
  }
}

TYPED_TEST(VarintFuzzTest, OverlongEncodingsFail) {
  Rng rng(7);
  for (int trial = 0; trial < 2'000; ++trial) {
    TypeParam value = static_cast<TypeParam>(rng.Next64());
    std::vector<uint8_t> canonical;
    Codec<TypeParam>::Put(canonical, value);
    if (canonical.size() >= static_cast<size_t>(Codec<TypeParam>::kMaxBytes)) {
      continue;  // already maximal; cannot pad further
    }
    // Zero-pad: set the continuation bit on the final byte and append
    // 0x00. Decodes to the same value, so it must be rejected.
    ASSERT_FALSE(canonical.empty());
    std::vector<uint8_t> overlong(canonical.begin(), canonical.end() - 1);
    overlong.push_back(static_cast<uint8_t>(canonical.back() | 0x80));
    overlong.push_back(0x00);
    size_t pos = 0;
    TypeParam decoded = 0;
    EXPECT_FALSE(Codec<TypeParam>::Get(overlong, &pos, &decoded))
        << "overlong encoding of " << value << " accepted";
  }
}

TYPED_TEST(VarintFuzzTest, AllContinuationBytesFail) {
  // kMaxBytes-or-more continuation bytes with no terminator: both
  // truncated and over-shifted at once.
  for (int len = 1; len <= 2 * Codec<TypeParam>::kMaxBytes; ++len) {
    std::vector<uint8_t> data(len, 0xFF);
    size_t pos = 0;
    TypeParam decoded = 0;
    EXPECT_FALSE(Codec<TypeParam>::Get(data, &pos, &decoded));
  }
}

TYPED_TEST(VarintFuzzTest, GarbageNeverCrashesAndClassifiesExactly) {
  // Random byte strings: decode must succeed iff the bytes are a
  // well-formed canonical encoding, which we verify independently by
  // re-encoding the decoded value.
  Rng rng(31337);
  for (int trial = 0; trial < 50'000; ++trial) {
    size_t len = 1 + rng.UniformBelow(12);
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.UniformBelow(256));

    size_t pos = 0;
    TypeParam decoded = 0;
    if (Codec<TypeParam>::Get(data, &pos, &decoded)) {
      // Success ⇒ consumed prefix is exactly the canonical encoding.
      std::vector<uint8_t> reencoded;
      Codec<TypeParam>::Put(reencoded, decoded);
      ASSERT_EQ(pos, reencoded.size());
      ASSERT_TRUE(std::equal(reencoded.begin(), reencoded.end(),
                             data.begin()))
          << "accepted bytes are not the canonical encoding";
    } else {
      // Failure ⇒ the prefix really is malformed: it must not be the
      // start of any canonical encoding that fits in the buffer. A
      // sufficient check: re-decoding after appending a terminator
      // either still fails or the original failure was a truncation.
      SUCCEED();
    }
  }
}

TEST(VarintRegressionTest, OverlongZeroIsRejected) {
  // The seed decoder accepted {0x80, 0x00} as 0 — an overlong encoding
  // distinct from the canonical {0x00}. Pinned here after the fix.
  std::vector<uint8_t> two_byte_zero = {0x80, 0x00};
  size_t pos = 0;
  uint32_t v32 = 0;
  EXPECT_FALSE(GetVarint32(two_byte_zero, &pos, &v32));
  pos = 0;
  uint64_t v64 = 0;
  EXPECT_FALSE(GetVarint64(two_byte_zero, &pos, &v64));

  // Canonical zero still decodes.
  std::vector<uint8_t> zero = {0x00};
  pos = 0;
  EXPECT_TRUE(GetVarint32(zero, &pos, &v32));
  EXPECT_EQ(v32, 0u);
  EXPECT_EQ(pos, 1u);
}

TEST(VarintRegressionTest, MaxValuesRoundTrip) {
  std::vector<uint8_t> buf;
  PutVarint32(buf, UINT32_MAX);
  size_t pos = 0;
  uint32_t v32 = 0;
  ASSERT_TRUE(GetVarint32(buf, &pos, &v32));
  EXPECT_EQ(v32, UINT32_MAX);

  buf.clear();
  PutVarint64(buf, UINT64_MAX);
  pos = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetVarint64(buf, &pos, &v64));
  EXPECT_EQ(v64, UINT64_MAX);

  // One-past-max in the final byte overflows and must fail: 5-byte
  // encoding whose top byte has bit 4 set (would be bit 32+).
  std::vector<uint8_t> too_big = {0xFF, 0xFF, 0xFF, 0xFF, 0x1F};
  pos = 0;
  EXPECT_FALSE(GetVarint32(too_big, &pos, &v32));
}

}  // namespace
}  // namespace qbs

// Tests for the on-disk engine format: round trips, corruption detection,
// and checksum verification.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "corpus/synthetic.h"
#include "storage/engine_storage.h"
#include "storage/file_io.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("qbs_storage_test_" + tag + "_" +
                  std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  return dir.string();
}

// --- file_io primitives ---

TEST(SectionIoTest, RoundTripsAllPrimitives) {
  std::stringstream buf;
  {
    SectionWriter w(buf, "TESTMAG1");
    w.WriteFixed32(0xDEADBEEF);
    w.WriteFixed64(0x0123456789ABCDEFull);
    w.WriteVarint32(300);
    w.WriteVarint64(1ull << 60);
    w.WriteString("hello world");
    w.WriteString("");
    ASSERT_TRUE(w.Finish().ok());
  }
  SectionReader r(buf);
  ASSERT_TRUE(r.ExpectMagic("TESTMAG1").ok());
  uint32_t f32 = 0;
  uint64_t f64 = 0, v64 = 0;
  uint32_t v32 = 0;
  std::string s1, s2;
  ASSERT_TRUE(r.ReadFixed32(&f32).ok());
  ASSERT_TRUE(r.ReadFixed64(&f64).ok());
  ASSERT_TRUE(r.ReadVarint32(&v32).ok());
  ASSERT_TRUE(r.ReadVarint64(&v64).ok());
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  EXPECT_EQ(f32, 0xDEADBEEF);
  EXPECT_EQ(f64, 0x0123456789ABCDEFull);
  EXPECT_EQ(v32, 300u);
  EXPECT_EQ(v64, 1ull << 60);
  EXPECT_EQ(s1, "hello world");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.VerifyChecksum().ok());
}

TEST(SectionIoTest, WrongMagicRejected) {
  std::stringstream buf;
  {
    SectionWriter w(buf, "TESTMAG1");
    w.WriteFixed32(1);
    ASSERT_TRUE(w.Finish().ok());
  }
  SectionReader r(buf);
  EXPECT_TRUE(r.ExpectMagic("OTHERMAG").IsCorruption());
}

TEST(SectionIoTest, FlippedBitFailsChecksum) {
  std::stringstream buf;
  {
    SectionWriter w(buf, "TESTMAG1");
    w.WriteString("payload payload payload");
    ASSERT_TRUE(w.Finish().ok());
  }
  std::string bytes = buf.str();
  bytes[12] ^= 0x01;  // flip a payload bit
  std::stringstream damaged(bytes);
  SectionReader r(damaged);
  ASSERT_TRUE(r.ExpectMagic("TESTMAG1").ok());
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_TRUE(r.VerifyChecksum().IsCorruption());
}

TEST(SectionIoTest, TruncationDetected) {
  std::stringstream buf;
  {
    SectionWriter w(buf, "TESTMAG1");
    w.WriteString("some payload");
    ASSERT_TRUE(w.Finish().ok());
  }
  std::string bytes = buf.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 12));
  SectionReader r(truncated);
  ASSERT_TRUE(r.ExpectMagic("TESTMAG1").ok());
  std::string s;
  Status status = r.ReadString(&s);
  if (status.ok()) status = r.VerifyChecksum();
  EXPECT_TRUE(status.IsCorruption());
}

TEST(SectionIoTest, OversizedStringRejected) {
  std::stringstream buf;
  {
    SectionWriter w(buf, "TESTMAG1");
    w.WriteString("0123456789");
    ASSERT_TRUE(w.Finish().ok());
  }
  SectionReader r(buf);
  ASSERT_TRUE(r.ExpectMagic("TESTMAG1").ok());
  std::string s;
  EXPECT_TRUE(r.ReadString(&s, /*max_len=*/4).IsCorruption());
}

// --- engine round trip ---

class EngineStorageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "storagedb";
    spec.num_docs = 400;
    spec.vocab_size = 20'000;
    spec.num_topics = 4;
    spec.seed = 777;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static SearchEngine* engine_;
};

SearchEngine* EngineStorageTest::engine_ = nullptr;

TEST_F(EngineStorageTest, SaveAndOpenRoundTrip) {
  std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveEngine(*engine_, dir).ok());

  auto reopened = OpenEngine(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->name(), engine_->name());
  EXPECT_EQ((*reopened)->num_docs(), engine_->num_docs());
  EXPECT_EQ((*reopened)->index().unique_terms(),
            engine_->index().unique_terms());
  EXPECT_EQ((*reopened)->index().total_terms(),
            engine_->index().total_terms());
  EXPECT_EQ((*reopened)->scorer_name(), engine_->scorer_name());
  fs::remove_all(dir);
}

TEST_F(EngineStorageTest, ReopenedEngineAnswersQueriesIdentically) {
  std::string dir = TempDir("queries");
  ASSERT_TRUE(SaveEngine(*engine_, dir).ok());
  auto reopened = OpenEngine(dir);
  ASSERT_TRUE(reopened.ok());

  // Use a handful of real terms from the corpus.
  LanguageModel actual = engine_->ActualLanguageModel();
  auto probes = actual.RankedTerms(TermMetric::kCtf, 8);
  for (const auto& [term, score] : probes) {
    auto original = engine_->RunQuery(term, 5);
    auto restored = (*reopened)->RunQuery(term, 5);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(original->size(), restored->size()) << term;
    for (size_t i = 0; i < original->size(); ++i) {
      EXPECT_EQ((*original)[i].handle, (*restored)[i].handle) << term;
      EXPECT_DOUBLE_EQ((*original)[i].score, (*restored)[i].score) << term;
    }
  }
  // Documents fetch identically too.
  auto hits = engine_->RunQuery(probes[0].first, 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  auto t1 = engine_->FetchDocument((*hits)[0].handle);
  auto t2 = (*reopened)->FetchDocument((*hits)[0].handle);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, *t2);
  fs::remove_all(dir);
}

TEST_F(EngineStorageTest, ActualLanguageModelSurvivesRoundTrip) {
  std::string dir = TempDir("lm");
  ASSERT_TRUE(SaveEngine(*engine_, dir).ok());
  auto reopened = OpenEngine(dir);
  ASSERT_TRUE(reopened.ok());
  LanguageModel before = engine_->ActualLanguageModel();
  LanguageModel after = (*reopened)->ActualLanguageModel();
  EXPECT_EQ(before.vocabulary_size(), after.vocabulary_size());
  EXPECT_EQ(before.total_term_count(), after.total_term_count());
  before.ForEach([&](const std::string& term, const TermStats& s) {
    const TermStats* other = after.Find(term);
    ASSERT_NE(other, nullptr) << term;
    EXPECT_EQ(*other, s) << term;
  });
  fs::remove_all(dir);
}

TEST_F(EngineStorageTest, MissingDirectoryIsNotFound) {
  auto r = OpenEngine("/nonexistent/qbs/engine/dir");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(EngineStorageTest, CorruptedPostingFileDetected) {
  std::string dir = TempDir("corrupt");
  ASSERT_TRUE(SaveEngine(*engine_, dir).ok());
  // Flip a byte in the middle of the postings file.
  std::string path = dir + "/post.qbs";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();

  auto r = OpenEngine(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  fs::remove_all(dir);
}

TEST_F(EngineStorageTest, TruncatedDocsFileDetected) {
  std::string dir = TempDir("trunc");
  ASSERT_TRUE(SaveEngine(*engine_, dir).ok());
  std::string path = dir + "/docs.qbs";
  fs::resize_file(path, fs::file_size(path) - 64);
  auto r = OpenEngine(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  fs::remove_all(dir);
}

TEST(EngineStorageOptionsTest, CustomAnalyzerConfigurationSurvives) {
  StopwordList custom({"foo", "bar", "baz"});
  SearchEngineOptions opts;
  AnalyzerOptions aopts;
  aopts.stem = false;
  aopts.stopwords = &custom;
  aopts.tokenizer.min_token_length = 2;
  opts.analyzer = Analyzer(aopts);
  opts.scorer = "bm25";
  SearchEngine engine("customdb", opts);
  ASSERT_TRUE(engine.AddDocument("d1", "foo keeps bar out baz stays").ok());

  std::string dir = TempDir("custom");
  ASSERT_TRUE(SaveEngine(engine, dir).ok());
  auto reopened = OpenEngine(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  const AnalyzerOptions& restored = (*reopened)->analyzer().options();
  EXPECT_FALSE(restored.stem);
  EXPECT_TRUE(restored.remove_stopwords);
  EXPECT_EQ(restored.tokenizer.min_token_length, 2u);
  ASSERT_NE(restored.stopwords, nullptr);
  EXPECT_TRUE(restored.stopwords->Contains("foo"));
  EXPECT_FALSE(restored.stopwords->Contains("the"));
  EXPECT_EQ((*reopened)->scorer_name(), "bm25");

  // The restored engine analyzes new queries with the restored config:
  // "foo" is stopped, "keeps" matches unstemmed.
  auto hits = (*reopened)->RunQuery("foo", 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  hits = (*reopened)->RunQuery("keeps", 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  fs::remove_all(dir);
}

TEST(EngineStorageEmptyTest, EmptyEngineRoundTrips) {
  SearchEngine engine("emptydb");
  std::string dir = TempDir("empty");
  ASSERT_TRUE(SaveEngine(engine, dir).ok());
  auto reopened = OpenEngine(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_docs(), 0u);
  // And remains usable.
  ASSERT_TRUE((*reopened)->AddDocument("d1", "now it has content").ok());
  EXPECT_EQ((*reopened)->num_docs(), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace qbs

// Loopback integration tests: DbServer + RemoteTextDatabase against a
// real TCP socket pair, including the acceptance criterion that sampling
// a remote database learns the *same* model as sampling it in-process.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "net/socket.h"
#include "sampling/sampler.h"
#include "service/sampling_service.h"
#include "util/random.h"

namespace qbs {
namespace {

class NetRemoteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "netdb";
    spec.num_docs = 500;
    spec.vocab_size = 30'000;
    spec.num_topics = 3;
    spec.seed = 321321;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();

    server_ = new DbServer(engine_, DbServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    server_ = nullptr;
    delete engine_;
    engine_ = nullptr;
  }

  static RemoteDatabaseOptions ClientOptions() {
    RemoteDatabaseOptions opts;
    opts.host = "127.0.0.1";
    opts.port = server_->port();
    return opts;
  }

  static SearchEngine* engine_;
  static DbServer* server_;
};

SearchEngine* NetRemoteTest::engine_ = nullptr;
DbServer* NetRemoteTest::server_ = nullptr;

TEST_F(NetRemoteTest, ConnectLearnsServerName) {
  RemoteTextDatabase remote(ClientOptions());
  // Before the first round trip the name is synthesized from the address.
  EXPECT_EQ(remote.name(),
            "remote:127.0.0.1:" + std::to_string(server_->port()));
  ASSERT_TRUE(remote.Connect().ok());
  EXPECT_EQ(remote.name(), engine_->name());
}

TEST_F(NetRemoteTest, ConnectToClosedPortFailsFast) {
  RemoteDatabaseOptions opts = ClientOptions();
  // Grab an unused port by binding and immediately closing it.
  auto probe = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(probe.ok());
  opts.port = (*probe)->port();
  (*probe)->CloseListener();
  probe->reset();

  opts.max_attempts = 2;
  opts.backoff_initial_us = 1'000;
  opts.backoff_max_us = 2'000;
  RemoteTextDatabase remote(opts);
  Status status = remote.Connect();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsTransient()) << status.ToString();
}

TEST_F(NetRemoteTest, RunQueryMatchesInProcessResults) {
  RemoteTextDatabase remote(ClientOptions());
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(11);
  TermFilter filter;
  for (int i = 0; i < 5; ++i) {
    auto term = RandomEligibleTerm(actual, filter, rng);
    ASSERT_TRUE(term.has_value());
    auto local = engine_->RunQuery(*term, 10);
    auto over_wire = remote.RunQuery(*term, 10);
    ASSERT_TRUE(local.ok());
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    ASSERT_EQ(local->size(), over_wire->size()) << *term;
    for (size_t k = 0; k < local->size(); ++k) {
      EXPECT_EQ((*local)[k].handle, (*over_wire)[k].handle);
      EXPECT_EQ((*local)[k].score, (*over_wire)[k].score);  // bit-exact
    }
  }
}

TEST_F(NetRemoteTest, FetchDocumentMatchesInProcessBytes) {
  RemoteTextDatabase remote(ClientOptions());
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(13);
  TermFilter filter;
  auto term = RandomEligibleTerm(actual, filter, rng);
  ASSERT_TRUE(term.has_value());
  auto hits = engine_->RunQuery(*term, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  for (const SearchHit& hit : *hits) {
    auto local = engine_->FetchDocument(hit.handle);
    auto over_wire = remote.FetchDocument(hit.handle);
    ASSERT_TRUE(local.ok());
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    EXPECT_EQ(*local, *over_wire);
  }
}

TEST_F(NetRemoteTest, ServerStatusPassesThroughVerbatim) {
  RemoteTextDatabase remote(ClientOptions());
  auto fetched = remote.FetchDocument("no-such-handle");
  ASSERT_FALSE(fetched.ok());
  // NotFound is permanent: it must pass through without burning retries.
  EXPECT_TRUE(fetched.status().IsNotFound()) << fetched.status().ToString();
  EXPECT_EQ(remote.retries(), 0u);

  // Whatever the engine does with a degenerate query, the wire must
  // mirror it exactly — outcome code and payload both.
  auto local = engine_->RunQuery("", 10);
  auto queried = remote.RunQuery("", 10);
  ASSERT_EQ(local.ok(), queried.ok());
  if (local.ok()) {
    EXPECT_EQ(local->size(), queried->size());
  } else {
    EXPECT_EQ(local.status().code(), queried.status().code());
  }
}

// The acceptance criterion: sampling through the network stack with
// identical seeds must produce the *identical* learned language model —
// the transport is invisible to the sampling logic.
TEST_F(NetRemoteTest, RemoteSamplingLearnsIdenticalModel) {
  // Seed terms from the synthetic vocabulary (no real English words).
  std::vector<std::string> seeds;
  LanguageModel actual = engine_->ActualLanguageModel();
  for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 3)) {
    seeds.push_back(term);
  }

  ServiceOptions base;
  base.sampler.stopping.max_documents = 60;
  base.seed_terms = seeds;
  base.num_threads = 2;

  SamplingService local_service(base);
  ASSERT_TRUE(local_service.AddDatabase(engine_).ok());
  ASSERT_TRUE(local_service.RefreshAll().ok());

  SamplingService remote_service(base);
  auto remote = std::make_unique<RemoteTextDatabase>(ClientOptions());
  ASSERT_TRUE(remote->Connect().ok());  // resolves name() == engine name
  ASSERT_TRUE(remote_service.AddDatabase(std::move(remote)).ok());
  Status status = remote_service.RefreshAll();
  ASSERT_TRUE(status.ok()) << status.ToString();

  const DatabaseState& local_state = local_service.state()[0];
  const DatabaseState& remote_state = remote_service.state()[0];
  ASSERT_TRUE(local_state.has_model);
  ASSERT_TRUE(remote_state.has_model);
  EXPECT_EQ(local_state.documents_examined, remote_state.documents_examined);
  EXPECT_EQ(local_state.queries_run, remote_state.queries_run);

  // Byte-identical serialized models, not just matching summary stats.
  std::ostringstream local_bytes, remote_bytes;
  ASSERT_TRUE(local_state.learned.Save(local_bytes).ok());
  ASSERT_TRUE(remote_state.learned.Save(remote_bytes).ok());
  EXPECT_EQ(local_bytes.str(), remote_bytes.str());
  ASSERT_GT(local_state.learned.vocabulary_size(), 100u);
}

// The tentpole acceptance criterion: against the same server, batched
// sampling must learn the byte-identical model while spending at least
// 3x fewer RPCs per sampled document than the v1 call-per-document shape.
TEST_F(NetRemoteTest, BatchedSamplingIdenticalModelAtLeast3xFewerRpcs) {
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(17);
  TermFilter filter;
  auto initial = RandomEligibleTerm(actual, filter, rng);
  ASSERT_TRUE(initial.has_value());

  SamplerOptions base;
  // Wider rounds than the paper's N=4 baseline: with tiny rounds the
  // query RPC dominates both sides of the ratio and the win saturates
  // near 2x regardless of how well batching works.
  base.docs_per_query = 8;
  base.stopping.max_documents = 80;
  base.initial_term = *initial;
  base.seed = 99;

  struct Outcome {
    std::string model_bytes;
    double rpcs_per_doc = 0;
  };
  auto run = [&](RetrievalMode mode, bool enable_batching) -> Outcome {
    RemoteDatabaseOptions copts = ClientOptions();
    copts.enable_batching = enable_batching;
    RemoteTextDatabase remote(copts);
    SamplerOptions opts = base;
    opts.retrieval = mode;
    auto result = QueryBasedSampler(&remote, opts).Run();
    Outcome out;
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return out;
    EXPECT_EQ(result->documents_examined, 80u);
    std::ostringstream bytes;
    EXPECT_TRUE(result->learned.Save(bytes).ok());
    out.model_bytes = bytes.str();
    out.rpcs_per_doc = static_cast<double>(remote.rpcs()) /
                       static_cast<double>(result->documents_examined);
    return out;
  };

  // The v1 shape: batching disabled, one RPC per query and per document.
  Outcome v1 = run(RetrievalMode::kSingleFetch, false);
  // One RPC per round.
  Outcome query_and_fetch = run(RetrievalMode::kQueryAndFetch, true);
  // Two RPCs per round, no duplicate transfer (the default mode).
  Outcome fetch_batch = run(RetrievalMode::kFetchBatch, true);

  ASSERT_FALSE(v1.model_bytes.empty());
  EXPECT_EQ(v1.model_bytes, query_and_fetch.model_bytes);
  EXPECT_EQ(v1.model_bytes, fetch_batch.model_bytes);

  EXPECT_GE(v1.rpcs_per_doc / query_and_fetch.rpcs_per_doc, 3.0)
      << "v1: " << v1.rpcs_per_doc
      << " rpcs/doc, query_and_fetch: " << query_and_fetch.rpcs_per_doc;
  EXPECT_LT(fetch_batch.rpcs_per_doc, v1.rpcs_per_doc);
}

// Pipelined retrieval (fetches running ahead of ingestion on a pool)
// must not change the learned model either — ingestion order is hit
// order no matter which fetch finishes first.
TEST_F(NetRemoteTest, PipelinedSamplingLearnsIdenticalModel) {
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(19);
  TermFilter filter;
  auto initial = RandomEligibleTerm(actual, filter, rng);
  ASSERT_TRUE(initial.has_value());

  SamplerOptions base;
  base.docs_per_query = 6;
  base.stopping.max_documents = 48;
  base.initial_term = *initial;
  base.seed = 41;
  base.retrieval = RetrievalMode::kSingleFetch;

  auto run = [&](ThreadPool* pool, size_t depth) -> std::string {
    RemoteTextDatabase remote(ClientOptions());
    SamplerOptions opts = base;
    opts.fetch_pool = pool;
    opts.prefetch_depth = depth;
    auto result = QueryBasedSampler(&remote, opts).Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return std::string();
    std::ostringstream bytes;
    EXPECT_TRUE(result->learned.Save(bytes).ok());
    return bytes.str();
  };

  std::string inline_bytes = run(nullptr, 0);
  ThreadPool pool(3);
  std::string pipelined_bytes = run(&pool, 3);
  ASSERT_FALSE(inline_bytes.empty());
  EXPECT_EQ(inline_bytes, pipelined_bytes);
}

// Service-level wiring: a shared fetch pool across databases yields the
// same models as inline fetching.
TEST_F(NetRemoteTest, ServiceSharedFetchPoolKeepsModelsIdentical) {
  std::vector<std::string> seeds;
  LanguageModel actual = engine_->ActualLanguageModel();
  for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 3)) {
    seeds.push_back(term);
  }

  ServiceOptions base;
  base.sampler.stopping.max_documents = 40;
  base.sampler.retrieval = RetrievalMode::kSingleFetch;
  base.seed_terms = seeds;
  base.num_threads = 2;

  auto run = [&](size_t fetch_threads) -> std::string {
    ServiceOptions options = base;
    options.fetch_threads = fetch_threads;
    SamplingService service(options);
    auto remote = std::make_unique<RemoteTextDatabase>(ClientOptions());
    EXPECT_TRUE(remote->Connect().ok());
    EXPECT_TRUE(service.AddDatabase(std::move(remote)).ok());
    Status status = service.RefreshAll();
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!service.state()[0].has_model) return std::string();
    std::ostringstream bytes;
    EXPECT_TRUE(service.state()[0].learned.Save(bytes).ok());
    return bytes.str();
  };

  std::string inline_bytes = run(0);
  std::string pooled_bytes = run(2);
  ASSERT_FALSE(inline_bytes.empty());
  EXPECT_EQ(inline_bytes, pooled_bytes);
}

TEST_F(NetRemoteTest, StopUnblocksIdleClients) {
  // A dedicated server so stopping it does not disturb other tests.
  DbServer server(engine_, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RemoteDatabaseOptions opts;
  opts.host = "127.0.0.1";
  opts.port = server.port();
  opts.max_attempts = 1;
  RemoteTextDatabase remote(opts);
  ASSERT_TRUE(remote.Connect().ok());
  server.Stop();
  EXPECT_FALSE(server.running());
  // The pooled connection is dead; with retries disabled the call must
  // fail cleanly (transient), not hang.
  auto result = remote.RunQuery("anything", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTransient()) << result.status().ToString();
}

TEST_F(NetRemoteTest, DoubleStartRejectedAndStopIdempotent) {
  DbServer server(engine_, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.address(),
            "127.0.0.1:" + std::to_string(server.port()));
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace qbs

// Loopback integration tests: DbServer + RemoteTextDatabase against a
// real TCP socket pair, including the acceptance criterion that sampling
// a remote database learns the *same* model as sampling it in-process.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "net/socket.h"
#include "sampling/sampler.h"
#include "service/sampling_service.h"
#include "util/random.h"

namespace qbs {
namespace {

class NetRemoteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "netdb";
    spec.num_docs = 500;
    spec.vocab_size = 30'000;
    spec.num_topics = 3;
    spec.seed = 321321;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();

    server_ = new DbServer(engine_, DbServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    server_ = nullptr;
    delete engine_;
    engine_ = nullptr;
  }

  static RemoteDatabaseOptions ClientOptions() {
    RemoteDatabaseOptions opts;
    opts.host = "127.0.0.1";
    opts.port = server_->port();
    return opts;
  }

  static SearchEngine* engine_;
  static DbServer* server_;
};

SearchEngine* NetRemoteTest::engine_ = nullptr;
DbServer* NetRemoteTest::server_ = nullptr;

TEST_F(NetRemoteTest, ConnectLearnsServerName) {
  RemoteTextDatabase remote(ClientOptions());
  // Before the first round trip the name is synthesized from the address.
  EXPECT_EQ(remote.name(),
            "remote:127.0.0.1:" + std::to_string(server_->port()));
  ASSERT_TRUE(remote.Connect().ok());
  EXPECT_EQ(remote.name(), engine_->name());
}

TEST_F(NetRemoteTest, ConnectToClosedPortFailsFast) {
  RemoteDatabaseOptions opts = ClientOptions();
  // Grab an unused port by binding and immediately closing it.
  auto probe = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(probe.ok());
  opts.port = (*probe)->port();
  (*probe)->CloseListener();
  probe->reset();

  opts.max_attempts = 2;
  opts.backoff_initial_us = 1'000;
  opts.backoff_max_us = 2'000;
  RemoteTextDatabase remote(opts);
  Status status = remote.Connect();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsTransient()) << status.ToString();
}

TEST_F(NetRemoteTest, RunQueryMatchesInProcessResults) {
  RemoteTextDatabase remote(ClientOptions());
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(11);
  TermFilter filter;
  for (int i = 0; i < 5; ++i) {
    auto term = RandomEligibleTerm(actual, filter, rng);
    ASSERT_TRUE(term.has_value());
    auto local = engine_->RunQuery(*term, 10);
    auto over_wire = remote.RunQuery(*term, 10);
    ASSERT_TRUE(local.ok());
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    ASSERT_EQ(local->size(), over_wire->size()) << *term;
    for (size_t k = 0; k < local->size(); ++k) {
      EXPECT_EQ((*local)[k].handle, (*over_wire)[k].handle);
      EXPECT_EQ((*local)[k].score, (*over_wire)[k].score);  // bit-exact
    }
  }
}

TEST_F(NetRemoteTest, FetchDocumentMatchesInProcessBytes) {
  RemoteTextDatabase remote(ClientOptions());
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(13);
  TermFilter filter;
  auto term = RandomEligibleTerm(actual, filter, rng);
  ASSERT_TRUE(term.has_value());
  auto hits = engine_->RunQuery(*term, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  for (const SearchHit& hit : *hits) {
    auto local = engine_->FetchDocument(hit.handle);
    auto over_wire = remote.FetchDocument(hit.handle);
    ASSERT_TRUE(local.ok());
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    EXPECT_EQ(*local, *over_wire);
  }
}

TEST_F(NetRemoteTest, ServerStatusPassesThroughVerbatim) {
  RemoteTextDatabase remote(ClientOptions());
  auto fetched = remote.FetchDocument("no-such-handle");
  ASSERT_FALSE(fetched.ok());
  // NotFound is permanent: it must pass through without burning retries.
  EXPECT_TRUE(fetched.status().IsNotFound()) << fetched.status().ToString();
  EXPECT_EQ(remote.retries(), 0u);

  // Whatever the engine does with a degenerate query, the wire must
  // mirror it exactly — outcome code and payload both.
  auto local = engine_->RunQuery("", 10);
  auto queried = remote.RunQuery("", 10);
  ASSERT_EQ(local.ok(), queried.ok());
  if (local.ok()) {
    EXPECT_EQ(local->size(), queried->size());
  } else {
    EXPECT_EQ(local.status().code(), queried.status().code());
  }
}

// The acceptance criterion: sampling through the network stack with
// identical seeds must produce the *identical* learned language model —
// the transport is invisible to the sampling logic.
TEST_F(NetRemoteTest, RemoteSamplingLearnsIdenticalModel) {
  // Seed terms from the synthetic vocabulary (no real English words).
  std::vector<std::string> seeds;
  LanguageModel actual = engine_->ActualLanguageModel();
  for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 3)) {
    seeds.push_back(term);
  }

  ServiceOptions base;
  base.sampler.stopping.max_documents = 60;
  base.seed_terms = seeds;
  base.num_threads = 2;

  SamplingService local_service(base);
  ASSERT_TRUE(local_service.AddDatabase(engine_).ok());
  ASSERT_TRUE(local_service.RefreshAll().ok());

  SamplingService remote_service(base);
  auto remote = std::make_unique<RemoteTextDatabase>(ClientOptions());
  ASSERT_TRUE(remote->Connect().ok());  // resolves name() == engine name
  ASSERT_TRUE(remote_service.AddDatabase(std::move(remote)).ok());
  Status status = remote_service.RefreshAll();
  ASSERT_TRUE(status.ok()) << status.ToString();

  const DatabaseState& local_state = local_service.state()[0];
  const DatabaseState& remote_state = remote_service.state()[0];
  ASSERT_TRUE(local_state.has_model);
  ASSERT_TRUE(remote_state.has_model);
  EXPECT_EQ(local_state.documents_examined, remote_state.documents_examined);
  EXPECT_EQ(local_state.queries_run, remote_state.queries_run);

  // Byte-identical serialized models, not just matching summary stats.
  std::ostringstream local_bytes, remote_bytes;
  ASSERT_TRUE(local_state.learned.Save(local_bytes).ok());
  ASSERT_TRUE(remote_state.learned.Save(remote_bytes).ok());
  EXPECT_EQ(local_bytes.str(), remote_bytes.str());
  ASSERT_GT(local_state.learned.vocabulary_size(), 100u);
}

TEST_F(NetRemoteTest, StopUnblocksIdleClients) {
  // A dedicated server so stopping it does not disturb other tests.
  DbServer server(engine_, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RemoteDatabaseOptions opts;
  opts.host = "127.0.0.1";
  opts.port = server.port();
  opts.max_attempts = 1;
  RemoteTextDatabase remote(opts);
  ASSERT_TRUE(remote.Connect().ok());
  server.Stop();
  EXPECT_FALSE(server.running());
  // The pooled connection is dead; with retries disabled the call must
  // fail cleanly (transient), not hang.
  auto result = remote.RunQuery("anything", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTransient()) << result.status().ToString();
}

TEST_F(NetRemoteTest, DoubleStartRejectedAndStopIdempotent) {
  DbServer server(engine_, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.address(),
            "127.0.0.1:" + std::to_string(server.port()));
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace qbs

// Tests for the structured query parser and belief evaluation.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "search/query_parser.h"
#include "search/search_engine.h"
#include "search/structured_searcher.h"

namespace qbs {
namespace {

// --- parser ---

std::string Reparse(const std::string& query) {
  auto parsed = ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? (*parsed)->ToString() : "";
}

TEST(QueryParserTest, SingleTerm) {
  auto q = ParseQuery("apple");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->op, QueryOp::kTerm);
  EXPECT_EQ((*q)->term, "apple");
}

TEST(QueryParserTest, BareMultiTermBecomesImplicitSum) {
  auto q = ParseQuery("apple banana cherry");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->op, QueryOp::kSum);
  ASSERT_EQ((*q)->children.size(), 3u);
  EXPECT_EQ((*q)->children[1]->term, "banana");
}

TEST(QueryParserTest, OperatorsParse) {
  EXPECT_EQ(Reparse("#and(a b)"), "#and(a b)");
  EXPECT_EQ(Reparse("#or(a b c)"), "#or(a b c)");
  EXPECT_EQ(Reparse("#not(a)"), "#not(a)");
  EXPECT_EQ(Reparse("#max(a b)"), "#max(a b)");
  EXPECT_EQ(Reparse("#sum(a b)"), "#sum(a b)");
}

TEST(QueryParserTest, NestedOperators) {
  EXPECT_EQ(Reparse("#and(#or(a b) #not(c))"), "#and(#or(a b) #not(c))");
  EXPECT_EQ(Reparse("#sum(a #and(b #or(c d)))"),
            "#sum(a #and(b #or(c d)))");
}

TEST(QueryParserTest, WsumParsesWeights) {
  auto q = ParseQuery("#wsum(2 apple 1 banana)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->op, QueryOp::kWsum);
  ASSERT_EQ((*q)->children.size(), 2u);
  ASSERT_EQ((*q)->weights.size(), 2u);
  EXPECT_DOUBLE_EQ((*q)->weights[0], 2.0);
  EXPECT_DOUBLE_EQ((*q)->weights[1], 1.0);
  EXPECT_EQ(Reparse("#wsum(2 apple 1 banana)"), "#wsum(2 apple 1 banana)");
}

TEST(QueryParserTest, WhitespaceInsensitive) {
  EXPECT_EQ(Reparse("  #and(  a    b )  "), "#and(a b)");
}

TEST(QueryParserTest, SyntaxErrors) {
  for (const char* bad :
       {"", "   ", "#and(", "#and()", "#bogus(a)", "#not(a b)", "#and a",
        ")", "#wsum(apple)", "#wsum(2)", "#wsum(-1 apple)",
        "#and(a))" }) {
    auto q = ParseQuery(bad);
    EXPECT_FALSE(q.ok()) << "should reject: " << bad;
    if (!q.ok()) {
      EXPECT_TRUE(q.status().IsInvalidArgument()) << bad;
    }
  }
}

TEST(QueryParserTest, ErrorsCarryOffset) {
  auto q = ParseQuery("#and(a #bogus(b))");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

// --- evaluation ---

class StructuredSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<SearchEngine>("structured");
    ASSERT_TRUE(engine_->AddDocument("both", "apple banana together").ok());
    ASSERT_TRUE(engine_->AddDocument("apples", "apple apple apple only").ok());
    ASSERT_TRUE(engine_->AddDocument("bananas", "banana banana only").ok());
    ASSERT_TRUE(engine_->AddDocument("neither", "cherry grape kiwi").ok());
  }

  std::vector<std::string> Handles(const std::string& query, size_t k = 10) {
    auto hits = engine_->RunStructuredQuery(query, k);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    std::vector<std::string> out;
    if (hits.ok()) {
      for (const auto& h : *hits) out.push_back(h.handle);
    }
    return out;
  }

  std::unique_ptr<SearchEngine> engine_;
};

TEST_F(StructuredSearchTest, AndPrefersDocsMatchingAllOperands) {
  auto handles = Handles("#and(apple banana)");
  ASSERT_FALSE(handles.empty());
  EXPECT_EQ(handles[0], "both");
  // "neither" matches no positive term and must be absent.
  for (const auto& h : handles) EXPECT_NE(h, "neither");
}

TEST_F(StructuredSearchTest, OrMatchesEitherOperand) {
  auto handles = Handles("#or(apple banana)");
  // All three docs containing either term are returned; "both" ranks first.
  EXPECT_EQ(handles.size(), 3u);
  EXPECT_EQ(handles[0], "both");
}

TEST_F(StructuredSearchTest, NotDemotes) {
  // Apple-only documents beat documents that also contain banana.
  auto handles = Handles("#and(apple #not(banana))");
  ASSERT_GE(handles.size(), 2u);
  EXPECT_EQ(handles[0], "apples");
}

TEST_F(StructuredSearchTest, MaxTakesStrongestEvidence) {
  auto with_max = engine_->RunStructuredQuery("#max(apple banana)", 10);
  ASSERT_TRUE(with_max.ok());
  // For the "apples" doc, max(apple-belief, default) == apple belief: the
  // same as its belief under a pure apple query.
  auto pure = engine_->RunStructuredQuery("apple", 10);
  ASSERT_TRUE(pure.ok());
  double max_score = 0.0, pure_score = 0.0;
  for (const auto& h : *with_max) {
    if (h.handle == "apples") max_score = h.score;
  }
  for (const auto& h : *pure) {
    if (h.handle == "apples") pure_score = h.score;
  }
  EXPECT_DOUBLE_EQ(max_score, pure_score);
}

TEST_F(StructuredSearchTest, WsumWeightsShiftRanking) {
  auto rank_of = [](const std::vector<std::string>& handles,
                    const std::string& name) {
    for (size_t i = 0; i < handles.size(); ++i) {
      if (handles[i] == name) return i;
    }
    return handles.size();
  };
  // Weighted toward banana, the banana-heavy doc beats the apple-heavy one;
  // reversing the weights reverses them.
  auto banana_heavy = Handles("#wsum(1 apple 5 banana)");
  EXPECT_LT(rank_of(banana_heavy, "bananas"), rank_of(banana_heavy, "apples"));
  auto apple_heavy = Handles("#wsum(5 apple 1 banana)");
  EXPECT_LT(rank_of(apple_heavy, "apples"), rank_of(apple_heavy, "bananas"));
}

TEST_F(StructuredSearchTest, BareQueryEqualsExplicitSum) {
  auto bare = engine_->RunStructuredQuery("apple banana", 10);
  auto expl = engine_->RunStructuredQuery("#sum(apple banana)", 10);
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(expl.ok());
  ASSERT_EQ(bare->size(), expl->size());
  for (size_t i = 0; i < bare->size(); ++i) {
    EXPECT_EQ((*bare)[i].handle, (*expl)[i].handle);
    EXPECT_DOUBLE_EQ((*bare)[i].score, (*expl)[i].score);
  }
}

TEST_F(StructuredSearchTest, BeliefsStayInUnitInterval) {
  for (const char* q : {"#and(apple banana)", "#or(apple banana cherry)",
                        "#not(apple)", "#wsum(3 apple 1 cherry)",
                        "#max(apple banana)"}) {
    auto hits = engine_->RunStructuredQuery(q, 10);
    ASSERT_TRUE(hits.ok()) << q;
    for (const auto& h : *hits) {
      EXPECT_GE(h.score, 0.0) << q;
      EXPECT_LE(h.score, 1.0) << q;
    }
  }
}

TEST_F(StructuredSearchTest, QueryTermsPassThroughDbAnalyzer) {
  // "apples" stems to "appl"... the corpus's "apple" stems identically, so
  // morphological variants match.
  auto handles = Handles("apples");
  EXPECT_FALSE(handles.empty());
  // A stopword-only structured leaf matches nothing.
  EXPECT_TRUE(Handles("#sum(the)").empty());
}

TEST_F(StructuredSearchTest, UnknownTermsMatchNothing) {
  EXPECT_TRUE(Handles("zzzqqq").empty());
  EXPECT_TRUE(Handles("#and(zzzqqq yyyxxx)").empty());
}

TEST_F(StructuredSearchTest, SyntaxErrorSurfacesAsInvalidArgument) {
  auto hits = engine_->RunStructuredQuery("#and(apple", 10);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsInvalidArgument());
}

TEST_F(StructuredSearchTest, ZeroMaxResultsIsInvalid) {
  auto hits = engine_->RunStructuredQuery("apple", 0);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsInvalidArgument());
}

TEST(StructuredSearchEmptyTest, EmptyIndexReturnsNothing) {
  SearchEngine engine("empty");
  auto hits = engine.RunStructuredQuery("#and(a b)", 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

}  // namespace
}  // namespace qbs

// Snapshot replication over the wire: SnapshotProvider packing a
// broker's published registry, the v5 snapshot_fetch chunk protocol,
// and FetchSnapshotToFile restoring a byte-identical, openable model
// store on the other side — including the epoch-pinned restart when the
// broker republishes mid-stream.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/selection_broker.h"
#include "broker/snapshot_provider.h"
#include "fed/snapshot_client.h"
#include "mstore/mapped_model_store.h"
#include "storage/file_io.h"
#include "net/wire.h"
#include "net/wire_client.h"
#include "selection/db_selection.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

std::vector<std::string> StemmedVocab() {
  static const std::vector<std::string>* words = new std::vector<std::string>{
      "recipe", "cooking", "quantum", "galaxy", "neural", "network",
      "protein", "genome"};
  Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> stems;
  for (const std::string& word : *words) {
    for (std::string& t : analyzer.Analyze(word)) stems.push_back(std::move(t));
  }
  return stems;
}

DatabaseCollection MakeCollection(size_t num_dbs, uint64_t seed,
                                  const std::vector<std::string>& vocab) {
  DatabaseCollection dbs;
  for (size_t i = 0; i < num_dbs; ++i) {
    LanguageModel model;
    uint64_t max_df = 1;
    for (size_t t = 0; t < vocab.size(); ++t) {
      uint64_t df = 1 + (seed * 31 + i * 11 + t * 7) % 40;
      uint64_t ctf = df + (seed * 17 + i * 5 + t * 13) % 160;
      model.AddTerm(vocab[t], df, ctf);
      max_df = std::max(max_df, df);
    }
    model.set_num_docs(max_df + i + 1);
    dbs.Add("snap-db-" + std::to_string(i), std::move(model));
  }
  return dbs;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

WireClientOptions ClientOptionsFor(const FrameServer& server) {
  WireClientOptions options;
  options.port = server.port();
  return options;
}

TEST(SnapshotProviderTest, EpochZeroIsFailedPreconditionNotAnEmptyImage) {
  ModelRegistry registry;
  SnapshotProvider provider(&registry);
  auto image = provider.Get();
  EXPECT_TRUE(image.status().IsFailedPrecondition())
      << image.status().ToString();
}

TEST(SnapshotProviderTest, PacksTheRegistryAndCachesByEpoch) {
  const std::vector<std::string> vocab = StemmedVocab();
  ModelRegistry registry;
  registry.Publish(MakeCollection(3, /*seed=*/1, vocab));
  SnapshotProvider provider(&registry);

  auto image = provider.Get();
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->epoch, 1u);
  ASSERT_NE(image->bytes, nullptr);

  // Cached: the same epoch returns the same packed image (same object).
  auto again = provider.Get();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->bytes.get(), image->bytes.get());

  // The image is a valid store holding exactly the published models.
  const std::string path = TempPath("provider_image.qbsm");
  ASSERT_TRUE(WriteFileAtomic(path, *image->bytes).ok());
  auto store = MappedModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_models(), 3u);

  // A republish invalidates the cache: new epoch, new image.
  registry.Publish(MakeCollection(4, /*seed=*/2, vocab));
  auto fresh = provider.Get();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epoch, 2u);
  EXPECT_NE(fresh->bytes.get(), image->bytes.get());
}

TEST(SnapshotFetchTest, FetchedFileOpensAndRanksIdentically) {
  const std::vector<std::string> vocab = StemmedVocab();
  ModelRegistry registry;
  registry.Publish(MakeCollection(5, /*seed=*/3, vocab));
  SelectionBroker broker(&registry);
  SnapshotProvider provider(&registry);
  BrokerServerOptions options;
  options.snapshot_source = [&provider] { return provider.Get(); };
  BrokerServer server(&broker, options);
  ASSERT_TRUE(server.Start().ok());

  WireClient client(ClientOptionsFor(server));
  const std::string path = TempPath("fetched_snapshot.qbsm");
  // A tiny chunk size forces a genuinely multi-chunk stream.
  SnapshotFetchOptions fetch_options;
  fetch_options.chunk_bytes = 128;
  auto fetched = FetchSnapshotToFile(client, path, fetch_options);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(fetched->epoch, 1u);

  // Byte-identity with a direct local pack of the same snapshot.
  auto image = provider.Get();
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(fetched->bytes, image->bytes->size());

  auto store = MappedModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_models(), 5u);

  // A registry restored from the fetched file ranks bit-identically to
  // the origin broker — the whole point of snapshot replication.
  ModelRegistry restored_registry;
  restored_registry.Publish(CollectionFromStore(*store));
  SelectionBroker restored(&restored_registry);
  for (const std::string& ranker : KnownRankerNames()) {
    auto want = broker.Select("recipe quantum protein", ranker);
    ASSERT_TRUE(want.ok()) << ranker;
    auto got = restored.Select("recipe quantum protein", ranker);
    ASSERT_TRUE(got.ok()) << ranker;
    ASSERT_EQ(got->scores.size(), want->scores.size()) << ranker;
    for (size_t i = 0; i < want->scores.size(); ++i) {
      EXPECT_EQ(got->scores[i].db_name, want->scores[i].db_name) << ranker;
      EXPECT_EQ(got->scores[i].score, want->scores[i].score) << ranker;
    }
  }
}

TEST(SnapshotFetchTest, RepublishMidStreamRestartsAtTheNewEpoch) {
  const std::vector<std::string> vocab = StemmedVocab();
  ModelRegistry registry;
  registry.Publish(MakeCollection(4, /*seed=*/5, vocab));
  SelectionBroker broker(&registry);
  SnapshotProvider provider(&registry);

  // Republish after the second chunk request: the stream pinned epoch 1,
  // the next chunk answers FailedPrecondition, and the client must
  // restart from offset 0 and complete at epoch 2.
  std::atomic<int> fetches{0};
  BrokerServerOptions options;
  options.snapshot_source = [&]() -> Result<SnapshotImage> {
    if (++fetches == 3) {
      registry.Publish(MakeCollection(6, /*seed=*/6, vocab));
    }
    return provider.Get();
  };
  BrokerServer server(&broker, options);
  ASSERT_TRUE(server.Start().ok());

  WireClient client(ClientOptionsFor(server));
  const std::string path = TempPath("restarted_snapshot.qbsm");
  SnapshotFetchOptions fetch_options;
  fetch_options.chunk_bytes = 64;
  auto fetched = FetchSnapshotToFile(client, path, fetch_options);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(fetched->epoch, 2u);
  EXPECT_GE(fetches.load(), 4);

  auto store = MappedModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_models(), 6u);
}

TEST(SnapshotFetchTest, ServerWithoutASourceAnswersUnimplemented) {
  const std::vector<std::string> vocab = StemmedVocab();
  ModelRegistry registry;
  registry.Publish(MakeCollection(2, /*seed=*/1, vocab));
  SelectionBroker broker(&registry);
  BrokerServer server(&broker, {});  // no snapshot_source
  ASSERT_TRUE(server.Start().ok());

  WireClient client(ClientOptionsFor(server));
  auto fetched =
      FetchSnapshotToFile(client, TempPath("never_written.qbsm"));
  EXPECT_TRUE(fetched.status().IsUnimplemented())
      << fetched.status().ToString();
}

TEST(SnapshotFetchTest, UnpublishedBrokerIsFailedPrecondition) {
  ModelRegistry registry;  // never Publish()ed: epoch 0
  SelectionBroker broker(&registry);
  SnapshotProvider provider(&registry);
  BrokerServerOptions options;
  options.snapshot_source = [&provider] { return provider.Get(); };
  BrokerServer server(&broker, options);
  ASSERT_TRUE(server.Start().ok());

  WireClient client(ClientOptionsFor(server));
  auto fetched =
      FetchSnapshotToFile(client, TempPath("epoch_zero.qbsm"));
  EXPECT_TRUE(fetched.status().IsFailedPrecondition())
      << fetched.status().ToString();
}

TEST(SnapshotFetchTest, ChunkRequestsAreClampedToTheServerMaximum) {
  const std::vector<std::string> vocab = StemmedVocab();
  ModelRegistry registry;
  registry.Publish(MakeCollection(4, /*seed=*/9, vocab));
  SelectionBroker broker(&registry);
  SnapshotProvider provider(&registry);
  BrokerServerOptions options;
  options.snapshot_source = [&provider] { return provider.Get(); };
  options.max_snapshot_chunk_bytes = 100;
  BrokerServer server(&broker, options);
  ASSERT_TRUE(server.Start().ok());

  WireClient client(ClientOptionsFor(server));
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kSnapshotFetch);
  request.method = WireMethod::kSnapshotFetch;
  request.snapshot_chunk_bytes = 1u << 20;  // asks big, gets clamped
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  EXPECT_LE(response->snapshot_data.size(), 100u);
  EXPECT_GT(response->snapshot_total_bytes, 100u)
      << "image too small to prove clamping";

  // And a greedy client that asks 0 gets the server default, still
  // bounded by the maximum.
  request.snapshot_chunk_bytes = 0;
  response = client.Call(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  EXPECT_LE(response->snapshot_data.size(), 100u);
}

}  // namespace
}  // namespace qbs

// Porter stemmer conformance tests. The expected outputs follow Martin
// Porter's reference implementation (including its documented departures
// from the 1980 paper), organized by algorithm step.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "text/porter_stemmer.h"

namespace qbs {
namespace {

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStepTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStepTest, StemsAsReference) {
  const StemCase& c = GetParam();
  EXPECT_EQ(PorterStemmer::Stem(c.input), c.expected) << "input=" << c.input;
}

// Step 1a: plural forms.
INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterStepTest,
    ::testing::Values(StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
                      StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
                      StemCase{"cats", "cat"}));

// Step 1b: -eed, -ed, -ing with cleanup rules.
INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterStepTest,
    ::testing::Values(
        StemCase{"feed", "feed"}, StemCase{"agreed", "agre"},
        StemCase{"plastered", "plaster"}, StemCase{"bled", "bled"},
        StemCase{"motoring", "motor"}, StemCase{"sing", "sing"},
        StemCase{"conflated", "conflat"}, StemCase{"troubled", "troubl"},
        StemCase{"sized", "size"}, StemCase{"hopping", "hop"},
        StemCase{"tanned", "tan"}, StemCase{"falling", "fall"},
        StemCase{"hissing", "hiss"}, StemCase{"fizzed", "fizz"},
        StemCase{"failing", "fail"}, StemCase{"filing", "file"}));

// Step 1c: terminal y.
INSTANTIATE_TEST_SUITE_P(
    Step1c, PorterStepTest,
    ::testing::Values(StemCase{"happy", "happi"}, StemCase{"sky", "sky"}));

// Step 2: double-suffix reduction.
INSTANTIATE_TEST_SUITE_P(
    Step2, PorterStepTest,
    ::testing::Values(
        StemCase{"relational", "relat"}, StemCase{"conditional", "condit"},
        StemCase{"rational", "ration"}, StemCase{"valenci", "valenc"},
        StemCase{"hesitanci", "hesit"}, StemCase{"digitizer", "digit"},
        StemCase{"conformabli", "conform"}, StemCase{"radicalli", "radic"},
        StemCase{"differentli", "differ"}, StemCase{"vileli", "vile"},
        StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"}));

// Step 3.
INSTANTIATE_TEST_SUITE_P(
    Step3, PorterStepTest,
    ::testing::Values(
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}));

// Step 4: single-suffix removal at m > 1.
INSTANTIATE_TEST_SUITE_P(
    Step4, PorterStepTest,
    ::testing::Values(
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"homologou", "homolog"}, StemCase{"communism", "commun"},
        StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
        StemCase{"homologi", "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}));

// Step 5: final -e and -ll.
INSTANTIATE_TEST_SUITE_P(
    Step5, PorterStepTest,
    ::testing::Values(StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
                      StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
                      StemCase{"roll", "roll"}));

// Common IR vocabulary the rest of the library depends on.
INSTANTIATE_TEST_SUITE_P(
    IrVocabulary, PorterStepTest,
    ::testing::Values(
        StemCase{"databases", "databas"}, StemCase{"retrieval", "retriev"},
        StemCase{"sampling", "sampl"}, StemCase{"queries", "queri"},
        StemCase{"documents", "document"}, StemCase{"frequencies", "frequenc"},
        StemCase{"information", "inform"}, StemCase{"selection", "select"},
        StemCase{"running", "run"}, StemCase{"indexes", "index"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStemmer::Stem(""), "");
  EXPECT_EQ(PorterStemmer::Stem("a"), "a");
  EXPECT_EQ(PorterStemmer::Stem("is"), "is");
  EXPECT_EQ(PorterStemmer::Stem("by"), "by");
}

TEST(PorterStemmerTest, ThreeLetterPlural) {
  EXPECT_EQ(PorterStemmer::Stem("ies"), "i");
  EXPECT_EQ(PorterStemmer::Stem("abs"), "ab");
}

TEST(PorterStemmerTest, StemInPlaceMatchesStem) {
  std::string w = "relational";
  PorterStemmer::StemInPlace(w);
  EXPECT_EQ(w, PorterStemmer::Stem("relational"));
}

TEST(PorterStemmerTest, VariantsOfAWordShareOneStem) {
  // The property the library depends on: morphological variants collapse.
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connected"));
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connecting"));
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connection"));
  EXPECT_EQ(PorterStemmer::Stem("connect"), PorterStemmer::Stem("connections"));
  EXPECT_EQ(PorterStemmer::Stem("sample"), PorterStemmer::Stem("samples"));
  EXPECT_EQ(PorterStemmer::Stem("sampling"), PorterStemmer::Stem("sampled"));
}

TEST(PorterStemmerTest, StemsNeverLongerThanInput) {
  for (const char* w : {"abc", "generalizations", "oscillators", "zzz",
                        "yyyy", "aeiou", "bcdfg"}) {
    EXPECT_LE(PorterStemmer::Stem(w).size(), std::string(w).size()) << w;
  }
}

}  // namespace
}  // namespace qbs

// Tests for database-selection algorithms and ranking-agreement evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "selection/db_selection.h"
#include "selection/eval.h"

namespace qbs {
namespace {

// Three databases with clear topical identities.
DatabaseCollection ToyCollection() {
  DatabaseCollection dbs;

  LanguageModel cooking;
  cooking.AddTerm("recipe", 80, 200);
  cooking.AddTerm("flour", 60, 120);
  cooking.AddTerm("oven", 50, 90);
  cooking.AddTerm("court", 1, 1);
  cooking.set_num_docs(100);

  LanguageModel law;
  law.AddTerm("court", 90, 300);
  law.AddTerm("appeal", 70, 150);
  law.AddTerm("ruling", 65, 130);
  law.AddTerm("recipe", 1, 1);
  law.set_num_docs(120);

  LanguageModel sports;
  sports.AddTerm("match", 85, 250);
  sports.AddTerm("court", 40, 60);  // tennis courts
  sports.AddTerm("score", 75, 140);
  sports.set_num_docs(110);

  dbs.Add("cooking", std::move(cooking));
  dbs.Add("law", std::move(law));
  dbs.Add("sports", std::move(sports));
  return dbs;
}

TEST(DatabaseCollectionTest, BasicAccessors) {
  DatabaseCollection dbs = ToyCollection();
  EXPECT_EQ(dbs.size(), 3u);
  EXPECT_EQ(dbs.name(0), "cooking");
  EXPECT_TRUE(dbs.model(1).Contains("appeal"));
  EXPECT_EQ(dbs.DatabasesContaining("court"), 3u);
  EXPECT_EQ(dbs.DatabasesContaining("flour"), 1u);
  EXPECT_EQ(dbs.DatabasesContaining("nothing"), 0u);
  EXPECT_GT(dbs.AvgCollectionSize(), 0.0);
}

TEST(MakeRankerTest, FactoryKnowsAllAlgorithms) {
  DatabaseCollection dbs = ToyCollection();
  for (const char* name : {"cori", "bgloss", "vgloss", "kl"}) {
    auto ranker = MakeRanker(name, &dbs);
    ASSERT_NE(ranker, nullptr) << name;
    EXPECT_EQ(ranker->name(), name);
  }
  EXPECT_EQ(MakeRanker("unknown", &dbs), nullptr);
}

class AllRankersTest : public ::testing::TestWithParam<const char*> {
 protected:
  DatabaseCollection dbs_ = ToyCollection();
};

TEST_P(AllRankersTest, TopicalQueryPicksTopicalDatabase) {
  auto ranker = MakeRanker(GetParam(), &dbs_);
  EXPECT_EQ(ranker->Rank({"recipe", "flour"})[0].db_name, "cooking");
  EXPECT_EQ(ranker->Rank({"appeal", "ruling"})[0].db_name, "law");
  EXPECT_EQ(ranker->Rank({"match", "score"})[0].db_name, "sports");
}

TEST_P(AllRankersTest, RanksEveryDatabase) {
  auto ranker = MakeRanker(GetParam(), &dbs_);
  auto ranking = ranker->Rank({"court"});
  ASSERT_EQ(ranking.size(), 3u);
  std::set<std::string> names;
  for (const auto& r : ranking) names.insert(r.db_name);
  EXPECT_EQ(names.size(), 3u);
}

TEST_P(AllRankersTest, AmbiguousTermGoesToDominantDatabase) {
  auto ranker = MakeRanker(GetParam(), &dbs_);
  // "court" is most frequent in the law database.
  EXPECT_EQ(ranker->Rank({"court"})[0].db_name, "law") << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AllRankersTest,
                         ::testing::Values("cori", "bgloss", "vgloss", "kl"));

TEST(CoriRankerTest, ScoresStayWithinBeliefBounds) {
  DatabaseCollection dbs = ToyCollection();
  CoriRanker ranker(&dbs);
  for (const auto& r : ranker.Rank({"recipe", "court"})) {
    EXPECT_GE(r.score, 0.4);
    EXPECT_LE(r.score, 1.0);
  }
}

TEST(CoriRankerTest, MissingTermGetsDefaultBelief) {
  DatabaseCollection dbs = ToyCollection();
  CoriRanker ranker(&dbs);
  auto ranking = ranker.Rank({"flour"});
  // law and sports lack "flour": their belief is exactly the default.
  for (const auto& r : ranking) {
    if (r.db_name != "cooking") {
      EXPECT_DOUBLE_EQ(r.score, 0.4);
    }
  }
  EXPECT_GT(ranking[0].score, 0.4);
}

TEST(BglossRankerTest, ConjunctiveEstimateZeroWhenAnyTermMissing) {
  DatabaseCollection dbs = ToyCollection();
  BglossRanker ranker(&dbs);
  auto ranking = ranker.Rank({"flour", "appeal"});  // no db has both
  for (const auto& r : ranking) EXPECT_DOUBLE_EQ(r.score, 0.0);
}

TEST(BglossRankerTest, EstimateMatchesIndependenceFormula) {
  DatabaseCollection dbs = ToyCollection();
  BglossRanker ranker(&dbs);
  auto ranking = ranker.Rank({"recipe", "flour"});
  // cooking: 100 * (80/100) * (60/100) = 48.
  ASSERT_EQ(ranking[0].db_name, "cooking");
  EXPECT_NEAR(ranking[0].score, 48.0, 1e-9);
}

TEST(VglossRankerTest, WeightsByCtfAndIdf) {
  DatabaseCollection dbs = ToyCollection();
  VglossRanker ranker(&dbs);
  auto ranking = ranker.Rank({"flour"});
  ASSERT_EQ(ranking[0].db_name, "cooking");
  // Only cooking contains flour; others score 0.
  EXPECT_DOUBLE_EQ(ranking[1].score, 0.0);
  EXPECT_DOUBLE_EQ(ranking[2].score, 0.0);
}

TEST(KlRankerTest, SmoothingAvoidsInfinities) {
  DatabaseCollection dbs = ToyCollection();
  KlRanker ranker(&dbs);
  auto ranking = ranker.Rank({"flour", "unseen_term"});
  for (const auto& r : ranking) {
    EXPECT_TRUE(std::isfinite(r.score)) << r.db_name;
  }
  EXPECT_EQ(ranking[0].db_name, "cooking");
}

TEST(RankersTest, EmptyQueryProducesDeterministicOrder) {
  DatabaseCollection dbs = ToyCollection();
  for (const char* name : {"cori", "bgloss", "vgloss", "kl"}) {
    auto ranking = MakeRanker(name, &dbs)->Rank({});
    ASSERT_EQ(ranking.size(), 3u);
    // All scores equal -> alphabetical by name.
    EXPECT_EQ(ranking[0].db_name, "cooking") << name;
    EXPECT_EQ(ranking[1].db_name, "law") << name;
    EXPECT_EQ(ranking[2].db_name, "sports") << name;
  }
}

// --- Ranking agreement ---

std::vector<DatabaseScore> MakeRanking(
    const std::vector<std::string>& names) {
  std::vector<DatabaseScore> out;
  double score = static_cast<double>(names.size());
  for (const auto& n : names) out.push_back({n, score--});
  return out;
}

TEST(CompareRankingsTest, IdenticalRankingsPerfectAgreement) {
  auto r = MakeRanking({"a", "b", "c", "d"});
  RankingAgreement agree = CompareRankings(r, r, 2);
  EXPECT_DOUBLE_EQ(agree.spearman, 1.0);
  EXPECT_DOUBLE_EQ(agree.top_k_overlap, 1.0);
  EXPECT_DOUBLE_EQ(agree.top_1_match, 1.0);
}

TEST(CompareRankingsTest, ReversedRankingsDisagree) {
  auto ref = MakeRanking({"a", "b", "c", "d"});
  auto rev = MakeRanking({"d", "c", "b", "a"});
  RankingAgreement agree = CompareRankings(ref, rev, 2);
  EXPECT_DOUBLE_EQ(agree.spearman, -1.0);
  EXPECT_DOUBLE_EQ(agree.top_1_match, 0.0);
  // top-2 of ref {a,b}; of rev {d,c}: no overlap.
  EXPECT_DOUBLE_EQ(agree.top_k_overlap, 0.0);
}

TEST(CompareRankingsTest, PartialAgreement) {
  auto ref = MakeRanking({"a", "b", "c"});
  auto cand = MakeRanking({"b", "a", "c"});
  RankingAgreement agree = CompareRankings(ref, cand, 2);
  // d^2 = 1 + 1 + 0 = 2 -> 1 - 12/24 = 0.5.
  EXPECT_DOUBLE_EQ(agree.spearman, 0.5);
  EXPECT_DOUBLE_EQ(agree.top_k_overlap, 1.0);  // {a,b} both ways
  EXPECT_DOUBLE_EQ(agree.top_1_match, 0.0);
}

TEST(MeanAgreementTest, AveragesOverQueries) {
  DatabaseCollection dbs = ToyCollection();
  CoriRanker ranker(&dbs);
  // Same ranker on both sides: perfect agreement for any query set.
  RankingAgreement agree = MeanAgreement(
      ranker, ranker, {{"recipe"}, {"court"}, {"match", "score"}}, 2);
  EXPECT_DOUBLE_EQ(agree.spearman, 1.0);
  EXPECT_DOUBLE_EQ(agree.top_k_overlap, 1.0);
  EXPECT_DOUBLE_EQ(agree.top_1_match, 1.0);
}

TEST(MeanAgreementTest, EmptyQuerySetIsZero) {
  DatabaseCollection dbs = ToyCollection();
  CoriRanker ranker(&dbs);
  RankingAgreement agree = MeanAgreement(ranker, ranker, {}, 2);
  EXPECT_DOUBLE_EQ(agree.spearman, 0.0);
}

}  // namespace
}  // namespace qbs

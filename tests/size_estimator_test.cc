// Tests for capture-recapture database-size estimation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "sampling/size_estimator.h"

namespace qbs {
namespace {

std::vector<std::string> Handles(int lo, int hi) {
  std::vector<std::string> out;
  for (int i = lo; i < hi; ++i) out.push_back("d" + std::to_string(i));
  return out;
}

TEST(CaptureRecaptureTest, LincolnPetersenHandComputed) {
  // n1=50, n2=40, overlap=20 -> N = 50*40/20 = 100.
  SizeEstimate est =
      CaptureRecapture(Handles(0, 50), Handles(30, 70),
                       /*chapman_correction=*/false);
  EXPECT_EQ(est.capture1, 50u);
  EXPECT_EQ(est.capture2, 40u);
  EXPECT_EQ(est.overlap, 20u);
  EXPECT_DOUBLE_EQ(est.estimated_docs, 100.0);
}

TEST(CaptureRecaptureTest, ChapmanHandComputed) {
  // Chapman: (51*41)/21 - 1 = 98.57...
  SizeEstimate est = CaptureRecapture(Handles(0, 50), Handles(30, 70));
  EXPECT_NEAR(est.estimated_docs, 51.0 * 41.0 / 21.0 - 1.0, 1e-12);
}

TEST(CaptureRecaptureTest, NoOverlapIsFiniteWithChapman) {
  SizeEstimate est = CaptureRecapture(Handles(0, 10), Handles(10, 20));
  EXPECT_EQ(est.overlap, 0u);
  EXPECT_DOUBLE_EQ(est.estimated_docs, 11.0 * 11.0 - 1.0);
  // Without Chapman, zero overlap is a degenerate 0 (documented).
  SizeEstimate raw = CaptureRecapture(Handles(0, 10), Handles(10, 20), false);
  EXPECT_DOUBLE_EQ(raw.estimated_docs, 0.0);
}

TEST(CaptureRecaptureTest, DuplicateHandlesCollapse) {
  std::vector<std::string> dup = {"a", "a", "b", "b", "c"};
  SizeEstimate est = CaptureRecapture(dup, dup, false);
  EXPECT_EQ(est.capture1, 3u);
  EXPECT_EQ(est.capture2, 3u);
  EXPECT_EQ(est.overlap, 3u);
  EXPECT_DOUBLE_EQ(est.estimated_docs, 3.0);
}

TEST(CaptureRecaptureTest, IdenticalFullCapturesEstimateExactly) {
  SizeEstimate est = CaptureRecapture(Handles(0, 200), Handles(0, 200), false);
  EXPECT_DOUBLE_EQ(est.estimated_docs, 200.0);
}

class SizeEstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "sizedb";
    spec.num_docs = 1'000;
    spec.vocab_size = 50'000;
    spec.num_topics = 4;
    spec.seed = 321;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static SearchEngine* engine_;
};

SearchEngine* SizeEstimatorTest::engine_ = nullptr;

TEST_F(SizeEstimatorTest, EstimateIsWithinSmallFactorOfTruth) {
  SizeEstimateOptions opts;
  opts.docs_per_run = 150;
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(9);
  opts.initial_term = *RandomEligibleTerm(actual, TermFilter{}, rng);
  auto est = EstimateDatabaseSize(engine_, opts);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_EQ(est->capture1, 150u);
  EXPECT_EQ(est->capture2, 150u);
  EXPECT_GT(est->overlap, 0u);
  // Query-based captures are popularity-biased, so expect a lower-bound
  // flavored estimate; accept within a factor of [1/4, 2] of the truth.
  EXPECT_GT(est->estimated_docs, 1000.0 / 4.0);
  EXPECT_LT(est->estimated_docs, 2000.0);
}

TEST_F(SizeEstimatorTest, MoreCaptureDocsTightenTheEstimate) {
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(10);
  std::string initial = *RandomEligibleTerm(actual, TermFilter{}, rng);
  double err_small = 0.0, err_large = 0.0;
  {
    SizeEstimateOptions opts;
    opts.docs_per_run = 60;
    opts.initial_term = initial;
    auto est = EstimateDatabaseSize(engine_, opts);
    ASSERT_TRUE(est.ok());
    err_small = std::abs(est->estimated_docs - 1000.0);
  }
  {
    SizeEstimateOptions opts;
    opts.docs_per_run = 300;
    opts.initial_term = initial;
    auto est = EstimateDatabaseSize(engine_, opts);
    ASSERT_TRUE(est.ok());
    err_large = std::abs(est->estimated_docs - 1000.0);
  }
  // Not guaranteed monotone per-seed, but 5x more data should not be
  // dramatically worse.
  EXPECT_LT(err_large, err_small * 2 + 100);
}

TEST_F(SizeEstimatorTest, NullDatabaseFails) {
  SizeEstimateOptions opts;
  opts.initial_term = "anything";
  auto est = EstimateDatabaseSize(nullptr, opts);
  ASSERT_FALSE(est.ok());
  EXPECT_TRUE(est.status().IsFailedPrecondition());
}

TEST_F(SizeEstimatorTest, MissingInitialTermPropagates) {
  SizeEstimateOptions opts;
  opts.initial_term = "";
  auto est = EstimateDatabaseSize(engine_, opts);
  ASSERT_FALSE(est.ok());
  EXPECT_TRUE(est.status().IsFailedPrecondition());
}

TEST(ProjectToDatabaseScaleTest, ScalesFrequenciesAndSize) {
  LanguageModel learned;
  learned.AddDocument({"apple", "apple", "bear"});
  learned.AddDocument({"apple"});
  // learned: 2 docs; project to 100 docs -> factor 50.
  LanguageModel projected = ProjectToDatabaseScale(learned, 100.0);
  EXPECT_EQ(projected.num_docs(), 100u);
  EXPECT_EQ(projected.Find("apple")->df, 100u);   // 2 * 50
  EXPECT_EQ(projected.Find("apple")->ctf, 150u);  // 3 * 50
  EXPECT_EQ(projected.Find("bear")->df, 50u);
}

TEST(ProjectToDatabaseScaleTest, DegenerateInputsPassThrough) {
  LanguageModel empty;
  LanguageModel out = ProjectToDatabaseScale(empty, 100.0);
  EXPECT_EQ(out.vocabulary_size(), 0u);
  LanguageModel learned;
  learned.AddDocument({"x"});
  LanguageModel unscaled = ProjectToDatabaseScale(learned, 0.0);
  EXPECT_EQ(unscaled.Find("x")->df, 1u);
  EXPECT_EQ(unscaled.num_docs(), 1u);
}

TEST(ProjectToDatabaseScaleTest, RareTermsKeepAtLeastDfOne) {
  LanguageModel learned;
  for (int d = 0; d < 100; ++d) {
    learned.AddDocument({"term" + std::to_string(d)});
  }
  // Projecting DOWN to 10 docs would round df to 0; it must clamp to 1.
  LanguageModel projected = ProjectToDatabaseScale(learned, 10.0);
  EXPECT_EQ(projected.Find("term0")->df, 1u);
}

}  // namespace
}  // namespace qbs

// Connection-scale soak: QBS_LOAD_CONNS concurrent connections (default
// 100 for developer machines; CI's `load` job runs 1000 under
// asan-ubsan) all held open against one epoll server, each served
// several request rounds. The pre-epoll server bounded open connections
// by its worker count, so this test is the existence proof for the
// C10K-scale rewrite — and the regression gate that keeps it true.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace qbs {
namespace {

size_t LoadConns() {
  const char* env = std::getenv("QBS_LOAD_CONNS");
  if (env != nullptr && *env != '\0') {
    return static_cast<size_t>(std::strtoul(env, nullptr, 10));
  }
  return 100;
}

/// Raises RLIMIT_NOFILE toward its hard cap so the connection fan-out
/// (2 fds per connection: client + server side) fits. Returns the
/// resulting soft limit.
size_t RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) limit = raised;
  }
  return static_cast<size_t>(limit.rlim_cur);
}

class LoadServer : public FrameServer {
 public:
  explicit LoadServer(FrameServerOptions options)
      : FrameServer("LoadServer", std::move(options)) {}
  ~LoadServer() override { Stop(); }

 protected:
  WireResponse Handle(const WireRequest& request) override {
    WireResponse response;
    response.request_id = request.request_id;
    response.method = request.method;
    response.protocol_version = request.protocol_version;
    return response;
  }
};

std::vector<uint8_t> PingFrame(uint64_t request_id) {
  WireRequest request;
  request.method = WireMethod::kPing;
  request.request_id = request_id;
  std::vector<uint8_t> payload = EncodeRequest(request);
  std::vector<uint8_t> frame(4 + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < 4; ++i) {
    frame[i] = static_cast<uint8_t>((length >> (8 * i)) & 0xFF);
  }
  std::copy(payload.begin(), payload.end(), frame.begin() + 4);
  return frame;
}

TEST(NetLoadTest, ThousandsOfConnectionsSoak) {
  const size_t fd_limit = RaiseFdLimit();
  size_t conns = LoadConns();
  // 2 fds per connection plus generous headroom for the runtime.
  const size_t affordable = fd_limit > 128 ? (fd_limit - 128) / 2 : 16;
  if (conns > affordable) {
    GTEST_LOG_(WARNING) << "capping QBS_LOAD_CONNS=" << conns << " to "
                        << affordable << " (RLIMIT_NOFILE=" << fd_limit
                        << ")";
    conns = affordable;
  }
  ASSERT_GE(conns, 16u) << "fd limit too low to run a meaningful soak";

  LoadServer server{FrameServerOptions{}};
  ASSERT_TRUE(server.Start().ok());

  // Phase 1: dial everything and hold it all open at once.
  std::vector<std::unique_ptr<SocketStream>> clients;
  clients.reserve(conns);
  for (size_t i = 0; i < conns; ++i) {
    auto client = SocketStream::Dial("127.0.0.1", server.port(), 5'000'000);
    ASSERT_TRUE(client.ok()) << "dial " << i << ": "
                             << client.status().ToString();
    (*client)->SetDeadlineMicros(30'000'000);
    clients.push_back(std::move(*client));
  }
  // Every connection is held open simultaneously — the old
  // worker-bounded server could never reach this state.
  for (int i = 0; i < 2000 && server.active_connections() < conns; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_connections(), conns);

  // Phase 2: several request rounds across every connection, driven by
  // a small thread team (the client side needs concurrency; the server
  // side is the system under test).
  constexpr int kRounds = 3;
  const size_t num_drivers = std::min<size_t>(16, conns);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> drivers;
    std::atomic<size_t> failures{0};
    for (size_t d = 0; d < num_drivers; ++d) {
      drivers.emplace_back([&, d] {
        for (size_t i = d; i < conns; i += num_drivers) {
          const uint64_t id =
              static_cast<uint64_t>(round) * conns + i + 1;
          std::vector<uint8_t> ping = PingFrame(id);
          if (!clients[i]->WriteAll(ping.data(), ping.size()).ok()) {
            failures.fetch_add(1);
            continue;
          }
          auto payload = ReadFrame(*clients[i], kDefaultMaxFrameBytes);
          if (!payload.ok()) {
            failures.fetch_add(1);
            continue;
          }
          auto response = DecodeResponse(*payload);
          if (!response.ok() || response->request_id != id ||
              !response->status.ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();
    ASSERT_EQ(failures.load(), 0u) << "round " << round;
  }

  // Phase 3: hang up everything; the server must release every Conn.
  clients.clear();
  for (int i = 0; i < 2000 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_connections(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace qbs

// Tests for the observability subsystem: metrics registry (concurrency,
// histogram bucket boundaries, exposition formats), leveled logging
// (filtering, sink plumbing), and trace recording (ring buffer, Chrome
// trace export round-trip).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {
namespace {

// --- MetricRegistry ---

TEST(MetricRegistryTest, CounterConcurrencyIsExact) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("hits_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricRegistryTest, ConcurrentRegistrationYieldsOneMetric) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("shared_total");
      c->Increment();
      seen[t] = c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(4.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 4.5);
  gauge->Add(-2.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 5.0, 10.0});
  // Exactly on a bound lands in that bucket (Prometheus le), just above
  // spills into the next, and anything beyond the last bound is +Inf.
  h->Observe(1.0);
  h->Observe(1.0001);
  h->Observe(5.0);
  h->Observe(10.0);
  h->Observe(10.5);
  h->Observe(0.0);
  std::vector<uint64_t> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(counts[0], 2u);      // 0.0, 1.0
  EXPECT_EQ(counts[1], 2u);      // 1.0001, 5.0
  EXPECT_EQ(counts[2], 1u);      // 10.0
  EXPECT_EQ(counts[3], 1u);      // 10.5
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 1.0 + 1.0001 + 5.0 + 10.0 + 10.5 + 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("conc", {10.0, 20.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 30'000;  // divisible by 30 so the modulo is uniform
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kObs; ++i) h->Observe(i % 30);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kObs);
  std::vector<uint64_t> counts = h->bucket_counts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2], h->count());
  // i % 30: 11 values <= 10, 10 in (10, 20], 9 above.
  EXPECT_EQ(counts[0], static_cast<uint64_t>(kThreads) * kObs / 30 * 11);
}

TEST(HistogramTest, ExponentialBounds) {
  std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 4.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
}

TEST(MetricRegistryTest, PrometheusExport) {
  MetricRegistry registry;
  registry.GetCounter("requests_total", "Total requests")->Increment(3);
  registry.GetGauge("queue_depth")->Set(7);
  Histogram* h = registry.GetHistogram("latency_us", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(4.0);
  h->Observe(100.0);
  std::ostringstream out;
  registry.ExportPrometheus(out);
  std::string text = out.str();
  EXPECT_NE(text.find("# HELP requests_total Total requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_us histogram"), std::string::npos);
  // Cumulative buckets: 1, 2, 3.
  EXPECT_NE(text.find("latency_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us_count 3"), std::string::npos);
}

TEST(MetricRegistryTest, LabeledSeriesShareOneTypeHeader) {
  MetricRegistry registry;
  registry.GetCounter(WithLabel("cost_total", "db", "a"))->Increment(1);
  registry.GetCounter(WithLabel("cost_total", "db", "b"))->Increment(2);
  std::ostringstream out;
  registry.ExportPrometheus(out);
  std::string text = out.str();
  EXPECT_NE(text.find("cost_total{db=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cost_total{db=\"b\"} 2"), std::string::npos);
  // Exactly one TYPE line for the family.
  size_t first = text.find("# TYPE cost_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE cost_total counter", first + 1),
            std::string::npos);
}

TEST(MetricRegistryTest, JsonExportIsWellFormed) {
  MetricRegistry registry;
  registry.GetCounter("c_total")->Increment(5);
  registry.GetGauge("g")->Set(1.5);
  registry.GetHistogram("h", {2.0})->Observe(1.0);
  std::ostringstream out;
  registry.ExportJson(out);
  std::string json = out.str();
  EXPECT_NE(json.find("\"counters\":{\"c_total\":5}"), std::string::npos);
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
  // Balanced braces/brackets (no nesting mistakes).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricRegistryTest, DefaultRegistryIsSharedAndPopulated) {
  Counter* a = MetricRegistry::Default().GetCounter("obs_test_total");
  Counter* b = MetricRegistry::Default().GetCounter("obs_test_total");
  EXPECT_EQ(a, b);
}

// --- Logging ---

class CapturingSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetMinLogLevel();
    records_.clear();
    SetLogSink([this](const LogRecord& r) { records_.push_back(r); });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(saved_level_);
  }
  std::vector<LogRecord> records_;
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(CapturingSinkTest, LevelFilteringSuppressesBelowMin) {
  SetMinLogLevel(LogLevel::kWarning);
  QBS_LOG(DEBUG) << "d";
  QBS_LOG(INFO) << "i";
  QBS_LOG(WARNING) << "w";
  QBS_LOG(ERROR) << "e";
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].level, LogLevel::kWarning);
  EXPECT_EQ(records_[0].message, "w");
  EXPECT_EQ(records_[1].level, LogLevel::kError);
  EXPECT_EQ(records_[1].message, "e");
}

TEST_F(CapturingSinkTest, DisabledStatementDoesNotEvaluateStream) {
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return 1;
  };
  QBS_LOG(INFO) << touch();
  EXPECT_EQ(evaluations, 0);
  QBS_LOG(ERROR) << touch();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(CapturingSinkTest, OffSilencesEverything) {
  SetMinLogLevel(LogLevel::kOff);
  QBS_LOG(ERROR) << "nope";
  EXPECT_TRUE(records_.empty());
}

TEST_F(CapturingSinkTest, RecordCarriesSourceLocationAndMessage) {
  SetMinLogLevel(LogLevel::kInfo);
  QBS_LOG(INFO) << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].message, "x=42 y=1.5");
  EXPECT_STREQ(records_[0].file, "obs_test.cc");
  EXPECT_GT(records_[0].line, 0);
  EXPECT_GT(records_[0].tid, 0u);
}

TEST_F(CapturingSinkTest, LogIfRespectsCondition) {
  SetMinLogLevel(LogLevel::kInfo);
  QBS_LOG_IF(INFO, false) << "skipped";
  QBS_LOG_IF(INFO, true) << "kept";
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].message, "kept");
}

TEST(LogLevelTest, ParseAcceptsNamesAndLetters) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("WARNING", LogLevel::kOff), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("e", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kInfo), LogLevel::kInfo);
}

// --- Tracing ---

TEST(TraceRecorderTest, RecordsSpansWhenEnabled) {
  TraceRecorder recorder(16);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record("ignored-api-allows-it", 0, 1);  // direct Record works
  recorder.Clear();
  recorder.set_enabled(true);
  recorder.Record("a", 10, 5);
  recorder.Record("b", 20, 2);
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].start_us, 10u);
  EXPECT_EQ(events[0].duration_us, 5u);
  EXPECT_EQ(events[1].name, "b");
}

TEST(TraceRecorderTest, RingBufferKeepsMostRecent) {
  TraceRecorder recorder(4);
  recorder.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("span" + std::to_string(i), i, 1);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: spans 6..9 survive.
  EXPECT_EQ(events[0].name, "span6");
  EXPECT_EQ(events[3].name, "span9");
}

TEST(TraceRecorderTest, GlobalSpanMacroRecordsOnlyWhenEnabled) {
  TraceRecorder& global = TraceRecorder::Global();
  global.Clear();
  global.set_enabled(false);
  { QBS_TRACE_SPAN("disabled.span"); }
  EXPECT_EQ(global.size(), 0u);
  global.set_enabled(true);
  { QBS_TRACE_SPAN("enabled.span", "detail"); }
  global.set_enabled(false);
  std::vector<TraceEvent> events = global.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "enabled.span/detail");
  global.Clear();
}

// Export round-trip: record spans, dump Chrome JSON, parse the essentials
// back out with a minimal reader, and compare against Events().
TEST(TraceRecorderTest, ChromeTraceExportRoundTrip) {
  TraceRecorder recorder(8);
  recorder.set_enabled(true);
  recorder.Record("alpha", 100, 7);
  recorder.Record("beta \"quoted\"\n", 200, 11);
  std::ostringstream out;
  recorder.DumpChromeTrace(out);
  std::string json = out.str();

  // Structure: one object, one traceEvents array, balanced delimiters.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Events round-trip: every recorded span appears as a complete ("X")
  // event with its timestamps, and nothing else does.
  size_t complete_events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, recorder.Events().size());
  EXPECT_NE(json.find("\"name\":\"alpha\",\"cat\":\"qbs\",\"ph\":\"X\","
                      "\"ts\":100,\"dur\":7"),
            std::string::npos);
  // The awkward name was escaped, not emitted raw.
  EXPECT_NE(json.find("beta \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_EQ(json.find("beta \"quoted\""), std::string::npos);
}

TEST(TraceRecorderTest, ConcurrentRecordingLosesNothing) {
  TraceRecorder recorder(100'000);
  recorder.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpans = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kSpans; ++i) {
        recorder.Record("t" + std::to_string(t), i, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.size(), static_cast<size_t>(kThreads) * kSpans);
  EXPECT_EQ(recorder.total_recorded(),
            static_cast<uint64_t>(kThreads) * kSpans);
}

TEST(MonotonicMicrosTest, IsMonotonic) {
  uint64_t a = MonotonicMicros();
  uint64_t b = MonotonicMicros();
  EXPECT_LE(a, b);
}

// --- Distributed tracing: span identity and context propagation ---

// Enables the global recorder for a test and restores + clears after.
class TraceIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().set_enabled(false);
    TraceRecorder::Global().Clear();
  }
  static const TraceEvent* FindSpan(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
    for (const TraceEvent& e : events) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

TEST_F(TraceIdentityTest, NestedSpansFormAParentChainInOneTrace) {
  {
    QBS_TRACE_SPAN("outer");
    { QBS_TRACE_SPAN("inner"); }
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  const TraceEvent* outer = FindSpan(events, "outer");
  const TraceEvent* inner = FindSpan(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The root span started a fresh trace both spans belong to.
  EXPECT_NE(outer->trace_id_hi | outer->trace_id_lo, 0u);
  EXPECT_EQ(inner->trace_id_hi, outer->trace_id_hi);
  EXPECT_EQ(inner->trace_id_lo, outer->trace_id_lo);
  EXPECT_NE(outer->span_id, 0u);
  EXPECT_NE(inner->span_id, outer->span_id);
  EXPECT_EQ(outer->parent_span_id, 0u);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
}

TEST_F(TraceIdentityTest, SeparateRootSpansGetSeparateTraces) {
  { QBS_TRACE_SPAN("first"); }
  { QBS_TRACE_SPAN("second"); }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  const TraceEvent* first = FindSpan(events, "first");
  const TraceEvent* second = FindSpan(events, "second");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(first->trace_id_hi != second->trace_id_hi ||
              first->trace_id_lo != second->trace_id_lo);
}

TEST_F(TraceIdentityTest, RequestIdDetailFormatsIntoSpanName) {
  { QBS_TRACE_SPAN("net.rpc", "select", uint64_t{42}); }
  { QBS_TRACE_SPAN("net.rpc", "ping", uint64_t{0}); }  // 0 id: omitted
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  EXPECT_NE(FindSpan(events, "net.rpc/select#42"), nullptr);
  EXPECT_NE(FindSpan(events, "net.rpc/ping"), nullptr);
}

TEST_F(TraceIdentityTest, ScopeInstallsAmbientContextAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  EXPECT_EQ(CurrentRequestId(), 0u);
  TraceContext remote;
  remote.trace_id_hi = 0x1111;
  remote.trace_id_lo = 0x2222;
  remote.parent_span_id = 0x3333;
  remote.sampled = true;
  {
    TraceContextScope scope(remote, /*request_id=*/99);
    EXPECT_EQ(CurrentRequestId(), 99u);
    TraceContext ambient = CurrentTraceContext();
    EXPECT_EQ(ambient.trace_id_hi, 0x1111u);
    EXPECT_EQ(ambient.trace_id_lo, 0x2222u);
    EXPECT_EQ(ambient.parent_span_id, 0x3333u);
    EXPECT_TRUE(ambient.sampled);
    { QBS_TRACE_SPAN("under.remote"); }
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
  EXPECT_EQ(CurrentRequestId(), 0u);
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  const TraceEvent* span = FindSpan(events, "under.remote");
  ASSERT_NE(span, nullptr);
  // The local span joined the remote trace and parented under the
  // remote caller's span instead of starting its own trace.
  EXPECT_EQ(span->trace_id_hi, 0x1111u);
  EXPECT_EQ(span->trace_id_lo, 0x2222u);
  EXPECT_EQ(span->parent_span_id, 0x3333u);
}

TEST_F(TraceIdentityTest, UnsampledContextSilencesSpans) {
  TraceContext remote;
  remote.trace_id_hi = 0x1;
  remote.trace_id_lo = 0x2;
  remote.sampled = false;
  {
    TraceContextScope scope(remote);
    QBS_TRACE_SPAN("silent");
  }
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
}

TEST_F(TraceIdentityTest, SpanInsideScopeParentsUnderLocalSpanNotRemote) {
  TraceContext remote;
  remote.trace_id_hi = 0xaa;
  remote.trace_id_lo = 0xbb;
  remote.parent_span_id = 0xcc;
  remote.sampled = true;
  {
    TraceContextScope scope(remote);
    QBS_TRACE_SPAN("serve");
    { QBS_TRACE_SPAN("handler"); }
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  const TraceEvent* serve = FindSpan(events, "serve");
  const TraceEvent* handler = FindSpan(events, "handler");
  ASSERT_NE(serve, nullptr);
  ASSERT_NE(handler, nullptr);
  EXPECT_EQ(serve->parent_span_id, 0xccu);
  EXPECT_EQ(handler->parent_span_id, serve->span_id);
  EXPECT_EQ(handler->trace_id_hi, 0xaau);
}

TEST_F(TraceIdentityTest, DeadlineBudgetCountsDownAndNeverHitsZero) {
  TraceContext remote;
  remote.trace_id_hi = 1;
  remote.trace_id_lo = 1;
  remote.sampled = true;
  remote.deadline_budget_us = 1'000'000;
  {
    TraceContextScope scope(remote);
    uint64_t remaining = CurrentTraceContext().deadline_budget_us;
    EXPECT_GT(remaining, 0u);
    EXPECT_LE(remaining, 1'000'000u);
  }
  // An already-expired budget propagates as "1us left", not "unbounded".
  remote.deadline_budget_us = 0;  // unbounded stays unbounded
  {
    TraceContextScope scope(remote);
    EXPECT_EQ(CurrentTraceContext().deadline_budget_us, 0u);
  }
}

TEST(TraceRecorderTest, OverwritesAreCountedAsDropped) {
  Counter* metric = MetricRegistry::Default().GetCounter(
      "qbs_trace_spans_dropped_total");
  uint64_t before = metric->value();
  TraceRecorder recorder(2);
  recorder.set_enabled(true);
  for (int i = 0; i < 5; ++i) recorder.Record("s", i, 1);
  EXPECT_EQ(recorder.dropped(), 3u);
  EXPECT_EQ(metric->value() - before, 3u);
}

TEST(TraceRecorderTest, ChromeTraceCarriesIdsAndProcessName) {
  TraceRecorder recorder(8);
  recorder.set_enabled(true);
  TraceEvent event;
  event.name = "identified";
  event.start_us = 5;
  event.duration_us = 2;
  event.trace_id_hi = 0xabcd;
  event.trace_id_lo = 0x1234;
  event.span_id = 0x77;
  event.parent_span_id = 0x66;
  recorder.Record(std::move(event));
  std::ostringstream out;
  recorder.DumpChromeTrace(out, "qbs test-process");
  std::string json = out.str();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"qbs test-process\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"000000000000abcd0000000000001234\""),
            std::string::npos);
  EXPECT_NE(json.find("\"span_id\":\"0000000000000077\""),
            std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"0000000000000066\""),
            std::string::npos);
}

}  // namespace
}  // namespace qbs

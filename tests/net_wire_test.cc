// Unit tests for the wire protocol: encode/decode round trips, error
// carriage, malformed-input rejection, framing over a ByteStream, and
// cross-version compatibility between real clients and servers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/db_server.h"
#include "net/remote_db.h"
#include "net/transport.h"
#include "net/wire.h"
#include "net/wire_client.h"
#include "obs/trace.h"
#include "search/text_database.h"

namespace qbs {
namespace {

// An in-memory ByteStream: writes append to an output buffer, reads
// consume a scripted input buffer.
class MemoryStream : public ByteStream {
 public:
  Status WriteAll(const uint8_t* data, size_t n) override {
    written.insert(written.end(), data, data + n);
    return Status::OK();
  }
  Status ReadFull(uint8_t* data, size_t n) override {
    if (input.size() < n) {
      return Status::Unavailable("connection closed by peer");
    }
    std::memcpy(data, input.data(), n);
    input.erase(input.begin(), input.begin() + static_cast<ptrdiff_t>(n));
    return Status::OK();
  }
  void SetDeadlineMicros(uint64_t) override {}
  void Close() override {}

  std::vector<uint8_t> written;
  std::vector<uint8_t> input;
};

TEST(WireRequestTest, PingRoundTrips) {
  WireRequest request;
  request.request_id = 42;
  request.method = WireMethod::kPing;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // A request declares the minimum version needed to understand it, not
  // the build's own version: v1 methods stay at 1 forever, so old
  // servers keep accepting them from new clients.
  EXPECT_EQ(decoded->protocol_version, MinVersionForMethod(WireMethod::kPing));
  EXPECT_EQ(decoded->protocol_version, 1u);
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->method, WireMethod::kPing);
}

TEST(WireRequestTest, RunQueryRoundTrips) {
  WireRequest request;
  request.request_id = std::numeric_limits<uint64_t>::max();
  request.method = WireMethod::kRunQuery;
  request.query = "information retrieval \xc3\xa9";  // non-ASCII survives
  request.max_results = 17;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->method, WireMethod::kRunQuery);
  EXPECT_EQ(decoded->query, request.query);
  EXPECT_EQ(decoded->max_results, 17u);
}

TEST(WireRequestTest, FetchDocumentRoundTrips) {
  WireRequest request;
  request.request_id = 7;
  request.method = WireMethod::kFetchDocument;
  request.handle = "doc-123";
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->handle, "doc-123");
}

TEST(WireRequestTest, EveryTruncationPrefixIsRejectedNotCrashed) {
  WireRequest request;
  request.request_id = 99;
  request.method = WireMethod::kRunQuery;
  request.query = "abcdefgh";
  request.max_results = 10;
  std::vector<uint8_t> payload = EncodeRequest(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    auto decoded = DecodeRequest(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(WireRequestTest, TrailingBytesRejected) {
  std::vector<uint8_t> payload = EncodeRequest(WireRequest{});
  payload.push_back(0);
  EXPECT_TRUE(DecodeRequest(payload).status().IsCorruption());
}

TEST(WireRequestTest, UnknownMethodRejected) {
  WireRequest request;
  request.method = static_cast<WireMethod>(200);
  std::vector<uint8_t> payload = EncodeRequest(request);
  EXPECT_TRUE(DecodeRequest(payload).status().IsCorruption());
}

TEST(WireResponseTest, RunQueryHitsRoundTripBitExact) {
  WireResponse response;
  response.request_id = 5;
  response.method = WireMethod::kRunQuery;
  response.hits = {{"alpha", 1.5}, {"beta", -0.0}, {"gamma", 1e-308}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->hits.size(), 3u);
  EXPECT_EQ(decoded->hits[0].handle, "alpha");
  EXPECT_EQ(decoded->hits[0].score, 1.5);
  EXPECT_EQ(decoded->hits[1].handle, "beta");
  EXPECT_TRUE(std::signbit(decoded->hits[1].score));  // -0.0 preserved
  EXPECT_EQ(decoded->hits[2].score, 1e-308);  // subnormal-adjacent exact
}

TEST(WireResponseTest, StatusCarriedAcrossTheWire) {
  WireResponse response;
  response.request_id = 9;
  response.method = WireMethod::kFetchDocument;
  response.status = Status::NotFound("no document named 'x'");
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->status.IsNotFound());
  EXPECT_EQ(decoded->status.message(), "no document named 'x'");
}

TEST(WireResponseTest, EveryStatusCodeRoundTrips) {
  const StatusCode codes[] = {
      StatusCode::kInvalidArgument,   StatusCode::kNotFound,
      StatusCode::kOutOfRange,        StatusCode::kFailedPrecondition,
      StatusCode::kIOError,           StatusCode::kCorruption,
      StatusCode::kUnimplemented,     StatusCode::kInternal,
      StatusCode::kUnavailable,       StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : codes) {
    WireResponse response;
    response.method = WireMethod::kPing;
    response.status = Status(code, "m");
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status.code(), code) << StatusCodeName(code);
  }
}

TEST(WireResponseTest, ServerInfoRoundTrips) {
  WireResponse response;
  response.method = WireMethod::kServerInfo;
  response.server_name = "cacm-like";
  response.server_protocol_version = kWireProtocolVersion;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->server_name, "cacm-like");
  EXPECT_EQ(decoded->server_protocol_version, kWireProtocolVersion);
}

TEST(WireResponseTest, FetchDocumentRoundTripsLargeBinaryDocument) {
  WireResponse response;
  response.method = WireMethod::kFetchDocument;
  response.document.resize(1 << 20);
  for (size_t i = 0; i < response.document.size(); ++i) {
    response.document[i] = static_cast<char>(i * 31);
  }
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->document, response.document);
}

TEST(WireResponseTest, EveryTruncationPrefixIsRejectedNotCrashed) {
  WireResponse response;
  response.request_id = 3;
  response.method = WireMethod::kRunQuery;
  response.hits = {{"h1", 0.5}, {"h2", 0.25}};
  std::vector<uint8_t> payload = EncodeResponse(response);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeResponse(prefix).ok());
  }
}

TEST(WireResponseTest, LyingHitCountRejectedWithoutHugeAllocation) {
  // Header that promises 2^40 hits with an empty body must fail cleanly.
  WireResponse response;
  response.method = WireMethod::kRunQuery;
  std::vector<uint8_t> payload = EncodeResponse(response);
  // The encoded hit count (0, one varint byte) is the final byte; splice
  // in a gigantic count instead.
  payload.pop_back();
  for (uint8_t byte : {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) {
    payload.push_back(byte);
  }
  auto decoded = DecodeResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(FramingTest, WriteThenReadRoundTrips) {
  MemoryStream stream;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteFrame(stream, payload).ok());
  // One WriteAll per frame (the property byte-layer fault injection
  // relies on): header and payload in a single buffer.
  ASSERT_EQ(stream.written.size(), 4u + payload.size());
  stream.input = stream.written;
  auto read_back = ReadFrame(stream, kDefaultMaxFrameBytes);
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(*read_back, payload);
}

TEST(FramingTest, EmptyPayloadRoundTrips) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, {}).ok());
  stream.input = stream.written;
  auto read_back = ReadFrame(stream, kDefaultMaxFrameBytes);
  ASSERT_TRUE(read_back.ok());
  EXPECT_TRUE(read_back->empty());
}

TEST(FramingTest, OversizedFrameRejectedBeforeAllocation) {
  MemoryStream stream;
  stream.input = {0xff, 0xff, 0xff, 0x7f};  // ~2 GiB length prefix
  auto read_back = ReadFrame(stream, 1 << 20);
  ASSERT_FALSE(read_back.ok());
  EXPECT_TRUE(read_back.status().IsCorruption());
}

TEST(FramingTest, TruncatedStreamSurfacesTransportStatus) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, {1, 2, 3, 4, 5, 6, 7, 8}).ok());
  stream.input = stream.written;
  stream.input.resize(stream.input.size() - 3);  // lose the tail
  auto read_back = ReadFrame(stream, kDefaultMaxFrameBytes);
  ASSERT_FALSE(read_back.ok());
  EXPECT_TRUE(read_back.status().IsUnavailable());
}

TEST(FaultyTransportTest, DropsAndTruncatesOnSchedule) {
  auto inner = std::make_unique<MemoryStream>();
  MemoryStream* raw = inner.get();
  FaultyTransport faulty(std::move(inner), {.drop_every_n_writes = 2});
  std::vector<uint8_t> payload = {9, 9, 9};
  ASSERT_TRUE(WriteFrame(faulty, payload).ok());  // write 1: passes
  ASSERT_TRUE(WriteFrame(faulty, payload).ok());  // write 2: dropped
  ASSERT_TRUE(WriteFrame(faulty, payload).ok());  // write 3: passes
  EXPECT_EQ(faulty.writes_dropped(), 1u);
  EXPECT_EQ(raw->written.size(), 2 * (4 + payload.size()));

  auto inner2 = std::make_unique<MemoryStream>();
  MemoryStream* raw2 = inner2.get();
  FaultyTransport trunc(std::move(inner2), {.truncate_every_n_writes = 1});
  ASSERT_TRUE(WriteFrame(trunc, payload).ok());
  EXPECT_EQ(trunc.writes_truncated(), 1u);
  EXPECT_EQ(raw2->written.size(), (4 + payload.size()) / 2);
}

TEST(FaultyTransportTest, FailsReadsOnSchedule) {
  auto inner = std::make_unique<MemoryStream>();
  inner->input = {1, 0, 0, 0, 42, 1, 0, 0, 0, 43};
  FaultyTransport faulty(std::move(inner), {.fail_every_n_reads = 3});
  auto first = ReadFrame(faulty, 1024);  // reads 1, 2
  ASSERT_TRUE(first.ok());
  auto second = ReadFrame(faulty, 1024);  // read 3 fails
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIOError());
  EXPECT_EQ(faulty.reads_failed(), 1u);
}

TEST(WireMethodTest, NamesAreStable) {
  EXPECT_STREQ(WireMethodName(WireMethod::kPing), "ping");
  EXPECT_STREQ(WireMethodName(WireMethod::kServerInfo), "server_info");
  EXPECT_STREQ(WireMethodName(WireMethod::kRunQuery), "run_query");
  EXPECT_STREQ(WireMethodName(WireMethod::kFetchDocument), "fetch_document");
  EXPECT_STREQ(WireMethodName(WireMethod::kQueryAndFetch), "query_and_fetch");
  EXPECT_STREQ(WireMethodName(WireMethod::kFetchBatch), "fetch_batch");
  EXPECT_STREQ(WireMethodName(WireMethod::kSelect), "select");
  EXPECT_STREQ(WireMethodName(WireMethod::kBrokerStatus), "broker_status");
  EXPECT_STREQ(WireMethodName(WireMethod::kShardInfo), "shard_info");
  EXPECT_STREQ(WireMethodName(WireMethod::kSnapshotFetch), "snapshot_fetch");
}

TEST(WireMethodTest, MinVersionsMatchTheProtocolHistory) {
  EXPECT_EQ(MinVersionForMethod(WireMethod::kPing), 1u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kServerInfo), 1u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kRunQuery), 1u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kFetchDocument), 1u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kQueryAndFetch), 2u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kFetchBatch), 2u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kSelect), 3u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kBrokerStatus), 3u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kShardInfo), 5u);
  EXPECT_EQ(MinVersionForMethod(WireMethod::kSnapshotFetch), 5u);
}

// --- v2 batch frames ------------------------------------------------------

TEST(WireBatchTest, QueryAndFetchRequestRoundTrips) {
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kQueryAndFetch);
  request.request_id = 11;
  request.method = WireMethod::kQueryAndFetch;
  request.query = "federated search";
  request.max_results = 4;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, 2u);
  EXPECT_EQ(decoded->method, WireMethod::kQueryAndFetch);
  EXPECT_EQ(decoded->query, "federated search");
  EXPECT_EQ(decoded->max_results, 4u);
}

TEST(WireBatchTest, FetchBatchRequestRoundTrips) {
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kFetchBatch);
  request.request_id = 12;
  request.method = WireMethod::kFetchBatch;
  request.handles = {"doc-1", "", "doc-3 with spaces"};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->method, WireMethod::kFetchBatch);
  EXPECT_EQ(decoded->handles, request.handles);
}

TEST(WireBatchTest, QueryAndFetchResponseRoundTripsWithPerDocStatus) {
  WireResponse response;
  response.protocol_version = 2;
  response.request_id = 13;
  response.method = WireMethod::kQueryAndFetch;
  response.hits = {{"a", 2.0}, {"b", 1.0}, {"c", 0.5}};
  response.documents.resize(3);
  response.documents[0] = {"a", Status::OK(), "text of a"};
  response.documents[1] = {"b", Status::NotFound("b vanished"), ""};
  response.documents[2] = {"c", Status::OK(), std::string(100'000, 'x')};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->hits.size(), 3u);
  ASSERT_EQ(decoded->documents.size(), 3u);
  // Handles are not repeated on the wire; the decoder reconstructs them
  // from the hit list.
  EXPECT_EQ(decoded->documents[0].handle, "a");
  EXPECT_TRUE(decoded->documents[0].status.ok());
  EXPECT_EQ(decoded->documents[0].text, "text of a");
  EXPECT_EQ(decoded->documents[1].handle, "b");
  EXPECT_TRUE(decoded->documents[1].status.IsNotFound());
  EXPECT_EQ(decoded->documents[1].status.message(), "b vanished");
  EXPECT_EQ(decoded->documents[2].text, response.documents[2].text);
}

TEST(WireBatchTest, FetchBatchResponseRoundTrips) {
  WireResponse response;
  response.protocol_version = 2;
  response.method = WireMethod::kFetchBatch;
  response.documents.resize(2);
  response.documents[0] = {"p", Status::OK(), "doc p"};
  response.documents[1] = {"q", Status::IOError("disk gone"), ""};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->documents.size(), 2u);
  // FetchBatch responses carry no handles at all (the requester knows
  // what it asked for, in order); the decoder leaves them empty.
  EXPECT_TRUE(decoded->documents[0].handle.empty());
  EXPECT_EQ(decoded->documents[0].text, "doc p");
  EXPECT_TRUE(decoded->documents[1].status.IsIOError());
}

TEST(WireBatchTest, EveryRequestTruncationPrefixIsRejectedNotCrashed) {
  WireRequest request;
  request.protocol_version = 2;
  request.method = WireMethod::kFetchBatch;
  request.handles = {"alpha", "beta", "gamma", "delta"};
  std::vector<uint8_t> payload = EncodeRequest(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    auto decoded = DecodeRequest(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(WireBatchTest, EveryResponseTruncationPrefixIsRejectedNotCrashed) {
  WireResponse response;
  response.protocol_version = 2;
  response.method = WireMethod::kQueryAndFetch;
  response.hits = {{"h1", 0.5}, {"h2", 0.25}};
  response.documents.resize(2);
  response.documents[0] = {"h1", Status::OK(), "body one"};
  response.documents[1] = {"h2", Status::NotFound("gone"), ""};
  std::vector<uint8_t> payload = EncodeResponse(response);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeResponse(prefix).ok());
  }
}

TEST(WireBatchTest, LyingDocumentCountRejectedWithoutHugeAllocation) {
  WireResponse response;
  response.protocol_version = 2;
  response.method = WireMethod::kFetchBatch;
  std::vector<uint8_t> payload = EncodeResponse(response);
  // The encoded document count (0, one varint byte) is the final byte;
  // splice in a gigantic count instead.
  payload.pop_back();
  for (uint8_t byte : {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) {
    payload.push_back(byte);
  }
  auto decoded = DecodeResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// --- v3 broker frames -----------------------------------------------------

TEST(WireSelectTest, SelectRequestRoundTrips) {
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kSelect);
  request.request_id = 21;
  request.method = WireMethod::kSelect;
  request.query = "medical imaging \xc3\xbc";  // non-ASCII survives
  request.ranker = "vgloss";
  request.max_results = 5;  // top-k
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, 3u);
  EXPECT_EQ(decoded->method, WireMethod::kSelect);
  EXPECT_EQ(decoded->query, request.query);
  EXPECT_EQ(decoded->ranker, "vgloss");
  EXPECT_EQ(decoded->max_results, 5u);
}

TEST(WireSelectTest, SelectResponseRoundTripsBitExactScores) {
  WireResponse response;
  response.protocol_version = 3;
  response.request_id = 22;
  response.method = WireMethod::kSelect;
  response.epoch = 17;
  response.scores = {{"wsj88", 0.4375}, {"cacm", -0.0}, {"kb", 1e-308}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 17u);
  ASSERT_EQ(decoded->scores.size(), 3u);
  EXPECT_EQ(decoded->scores[0].db_name, "wsj88");
  EXPECT_EQ(decoded->scores[0].score, 0.4375);
  EXPECT_TRUE(std::signbit(decoded->scores[1].score));  // -0.0 preserved
  EXPECT_EQ(decoded->scores[2].score, 1e-308);
}

TEST(WireSelectTest, BrokerStatusResponseRoundTrips) {
  WireResponse response;
  response.protocol_version = 3;
  response.method = WireMethod::kBrokerStatus;
  response.broker.epoch = 3;
  response.broker.databases = 4;
  response.broker.selects_total = 1000;
  response.broker.shed_total = 7;
  response.broker.cache_hits = 800;
  response.broker.cache_misses = 200;
  response.broker.cache_evictions = 50;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->broker.epoch, 3u);
  EXPECT_EQ(decoded->broker.databases, 4u);
  EXPECT_EQ(decoded->broker.selects_total, 1000u);
  EXPECT_EQ(decoded->broker.shed_total, 7u);
  EXPECT_EQ(decoded->broker.cache_hits, 800u);
  EXPECT_EQ(decoded->broker.cache_misses, 200u);
  EXPECT_EQ(decoded->broker.cache_evictions, 50u);
}

TEST(WireSelectTest, EveryRequestTruncationPrefixIsRejectedNotCrashed) {
  WireRequest request;
  request.protocol_version = 3;
  request.method = WireMethod::kSelect;
  request.query = "digital libraries";
  request.ranker = "cori";
  request.max_results = 2;
  std::vector<uint8_t> payload = EncodeRequest(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    auto decoded = DecodeRequest(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(WireSelectTest, EveryResponseTruncationPrefixIsRejectedNotCrashed) {
  WireResponse select_response;
  select_response.protocol_version = 3;
  select_response.method = WireMethod::kSelect;
  select_response.epoch = 9;
  select_response.scores = {{"a", 0.5}, {"b", 0.25}};
  WireResponse status_response;
  status_response.protocol_version = 3;
  status_response.method = WireMethod::kBrokerStatus;
  status_response.broker.epoch = 2;
  status_response.broker.selects_total = 12345;
  for (const WireResponse& response : {select_response, status_response}) {
    std::vector<uint8_t> payload = EncodeResponse(response);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      std::vector<uint8_t> prefix(
          payload.begin(), payload.begin() + static_cast<ptrdiff_t>(cut));
      EXPECT_FALSE(DecodeResponse(prefix).ok())
          << WireMethodName(response.method) << " prefix of " << cut
          << " bytes decoded";
    }
  }
}

TEST(WireSelectTest, LyingScoreCountRejectedWithoutHugeAllocation) {
  WireResponse response;
  response.protocol_version = 3;
  response.method = WireMethod::kSelect;
  response.epoch = 1;
  std::vector<uint8_t> payload = EncodeResponse(response);
  // The encoded score count (0, one varint byte) is the final byte;
  // splice in a gigantic count instead.
  payload.pop_back();
  for (uint8_t byte : {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) {
    payload.push_back(byte);
  }
  auto decoded = DecodeResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// --- v4 trace context trailer ---------------------------------------------

TEST(WireTraceTest, TraceTrailerRoundTripsOnEveryMethod) {
  const WireMethod methods[] = {
      WireMethod::kPing,          WireMethod::kServerInfo,
      WireMethod::kRunQuery,      WireMethod::kFetchDocument,
      WireMethod::kQueryAndFetch, WireMethod::kFetchBatch,
      WireMethod::kSelect,        WireMethod::kBrokerStatus,
  };
  for (WireMethod method : methods) {
    WireRequest request;
    request.protocol_version = kTraceContextMinVersion;
    request.request_id = 31;
    request.method = method;
    request.handles = {"h"};  // keep batch bodies decodable
    request.trace.trace_id_hi = 0xdeadbeefcafef00d;
    request.trace.trace_id_lo = 0x0123456789abcdef;
    request.trace.parent_span_id = 0xfeedface;
    request.trace.sampled = true;
    request.trace.deadline_budget_us = 250'000;
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok())
        << WireMethodName(method) << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded->trace.trace_id_hi, request.trace.trace_id_hi);
    EXPECT_EQ(decoded->trace.trace_id_lo, request.trace.trace_id_lo);
    EXPECT_EQ(decoded->trace.parent_span_id, request.trace.parent_span_id);
    EXPECT_TRUE(decoded->trace.sampled);
    EXPECT_EQ(decoded->trace.deadline_budget_us, 250'000u);
  }
}

TEST(WireTraceTest, UnsampledFlagRoundTrips) {
  WireRequest request;
  request.protocol_version = kTraceContextMinVersion;
  request.method = WireMethod::kPing;
  request.trace.trace_id_hi = 1;
  request.trace.trace_id_lo = 2;
  request.trace.sampled = false;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->trace.valid());
  EXPECT_FALSE(decoded->trace.sampled);
  EXPECT_EQ(decoded->trace.deadline_budget_us, 0u);
}

TEST(WireTraceTest, AbsentTrailerDecodesAsInvalidContext) {
  // A v3-era frame (no trailer) is byte-identical to a v4 frame from a
  // caller with no ambient trace: both decode with trace.valid() false.
  WireRequest request;
  request.method = WireMethod::kRunQuery;
  request.query = "q";
  request.max_results = 1;
  ASSERT_FALSE(request.trace.valid());
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace.valid());
}

TEST(WireTraceTest, EveryTrailerTruncationPrefixIsRejectedNotCrashed) {
  WireRequest request;
  request.protocol_version = kTraceContextMinVersion;
  request.method = WireMethod::kSelect;
  request.query = "q";
  request.ranker = "cori";
  request.max_results = 3;
  std::vector<uint8_t> bare = EncodeRequest(request);
  request.trace.trace_id_hi = 0xa;
  request.trace.trace_id_lo = 0xb;
  request.trace.sampled = true;
  request.trace.deadline_budget_us = 1000;
  std::vector<uint8_t> traced = EncodeRequest(request);
  ASSERT_GT(traced.size(), bare.size());
  // Every cut strictly inside the trailer must fail as Corruption — a
  // partial trailer is never silently treated as "no trace context".
  for (size_t cut = bare.size() + 1; cut < traced.size(); ++cut) {
    std::vector<uint8_t> prefix(traced.begin(),
                                traced.begin() + static_cast<ptrdiff_t>(cut));
    auto decoded = DecodeRequest(prefix);
    EXPECT_FALSE(decoded.ok()) << "trailer prefix of " << cut << " decoded";
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(WireTraceTest, ZeroTraceIdTrailerRejected) {
  WireRequest request;
  request.method = WireMethod::kPing;
  std::vector<uint8_t> payload = EncodeRequest(request);
  // Hand-append a trailer whose 128-bit trace id is all zeroes: a sender
  // bug, not a valid "absent" encoding (absent means no trailer at all).
  payload.insert(payload.end(), 24, 0);  // trace_id_hi/lo + parent, zeroed
  payload.push_back(0x01);               // flags: sampled
  payload.push_back(0x00);               // deadline budget: unbounded
  auto decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(WireTraceTest, GlobalRequestIdsAreUniqueAcrossClients) {
  // Two ids pulled back-to-back — even as if by different WireClient
  // instances — never collide; cross-tier log correlation depends on it.
  uint64_t a = NextGlobalRequestId();
  uint64_t b = NextGlobalRequestId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// --- cross-version compatibility -----------------------------------------
//
// Real client against real server over loopback, with one side pinned to
// protocol version 1 to reproduce a pre-batching build bit-for-bit (a v1
// build only ever emitted version-1 frames, which is exactly what the
// pin enforces).

// A tiny scripted database: three documents, every query hits all three.
class TinyDatabase : public TextDatabase {
 public:
  std::string name() const override { return "tiny"; }

  Result<std::vector<SearchHit>> RunQuery(std::string_view,
                                          size_t max_results) override {
    std::vector<SearchHit> hits = {{"t1", 3.0}, {"t2", 2.0}, {"t3", 1.0}};
    if (hits.size() > max_results) hits.resize(max_results);
    return hits;
  }

  Result<std::string> FetchDocument(std::string_view handle) override {
    if (handle == "t1") return std::string("first tiny document");
    if (handle == "t2") return std::string("second tiny document");
    if (handle == "t3") return std::string("third tiny document");
    return Status::NotFound("no document named '" + std::string(handle) + "'");
  }
};

struct VersionedPair {
  TinyDatabase db;
  std::unique_ptr<DbServer> server;
  std::unique_ptr<RemoteTextDatabase> client;

  // Spins up a loopback server and client with the given version pins.
  Status Start(uint32_t server_max, uint32_t client_max) {
    DbServerOptions server_options;
    server_options.max_protocol_version = server_max;
    server = std::make_unique<DbServer>(&db, server_options);
    QBS_RETURN_IF_ERROR(server->Start());
    RemoteDatabaseOptions client_options;
    client_options.port = server->port();
    client_options.max_protocol_version = client_max;
    client = std::make_unique<RemoteTextDatabase>(client_options);
    return client->Connect();
  }
};

TEST(WireCompatibilityTest, NewClientAgainstOldServerDowngradesAndWorks) {
  VersionedPair pair;
  ASSERT_TRUE(pair.Start(/*server_max=*/1, /*client_max=*/
                         kWireProtocolVersion)
                  .ok());
  EXPECT_EQ(pair.client->negotiated_version(), 1u);
  EXPECT_EQ(pair.client->name(), "tiny");

  // Single-shot RPCs work as they always did.
  auto hits = pair.client->RunQuery("anything", 3);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 3u);
  auto text = pair.client->FetchDocument("t2");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "second tiny document");

  // Batch calls silently fall back to single-shot composition.
  auto round = pair.client->QueryAndFetch("anything", 3);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->documents.size(), 3u);
  EXPECT_EQ(round->documents[0].text, "first tiny document");
  auto batch = pair.client->FetchBatch({"t3", "t1"});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].handle, "t3");
  EXPECT_EQ((*batch)[0].text, "third tiny document");
  EXPECT_EQ((*batch)[1].text, "first tiny document");
}

TEST(WireCompatibilityTest, OldClientAgainstNewServerNegotiatesV1) {
  VersionedPair pair;
  ASSERT_TRUE(pair.Start(/*server_max=*/kWireProtocolVersion,
                         /*client_max=*/1)
                  .ok());
  // The server answers min(its version, the client's ask): the old
  // client's equality check against its own version passes.
  EXPECT_EQ(pair.client->negotiated_version(), 1u);
  auto hits = pair.client->RunQuery("anything", 2);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 2u);
  auto text = pair.client->FetchDocument("t1");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "first tiny document");
}

TEST(WireCompatibilityTest, V3ClientAgainstV2ServerStepsDownOnce) {
  // A broker-aware client dialing a batching-era (v2) server must land on
  // exactly 2 — stepping down one version at a time, not crashing to 1 —
  // so batch RPCs keep working across the mixed-version window.
  VersionedPair pair;
  ASSERT_TRUE(pair.Start(/*server_max=*/2, kWireProtocolVersion).ok());
  EXPECT_EQ(pair.client->negotiated_version(), 2u);
  const uint64_t before = pair.client->rpcs();
  auto round = pair.client->QueryAndFetch("anything", 3);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->documents.size(), 3u);
  // Still one batched RPC, not a single-shot fallback.
  EXPECT_EQ(pair.client->rpcs() - before, 1u);
}

TEST(WireCompatibilityTest, NewPairNegotiatesCurrentVersionAndBatches) {
  VersionedPair pair;
  ASSERT_TRUE(pair.Start(kWireProtocolVersion, kWireProtocolVersion).ok());
  EXPECT_EQ(pair.client->negotiated_version(), kWireProtocolVersion);

  const uint64_t before = pair.client->rpcs();
  auto round = pair.client->QueryAndFetch("anything", 3);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->hits.size(), 3u);
  ASSERT_EQ(round->documents.size(), 3u);
  EXPECT_EQ(round->documents[2].handle, "t3");
  EXPECT_EQ(round->documents[2].text, "third tiny document");
  // The whole round — query plus three documents — cost one RPC.
  EXPECT_EQ(pair.client->rpcs() - before, 1u);

  auto batch = pair.client->FetchBatch({"t2", "missing"});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].text, "second tiny document");
  // A missing document fails its slot, not the batch.
  EXPECT_TRUE((*batch)[1].status.IsNotFound());
  EXPECT_EQ(pair.client->rpcs() - before, 2u);
}

TEST(WireCompatibilityTest, OldServerRejectsBatchFramesWithDiagnosableError) {
  // A client configured to batch but pinned to negotiate nothing —
  // forcing a v2 frame at an old server — gets FailedPrecondition, not
  // a dropped connection: the server keeps serving afterwards.
  VersionedPair pair;
  ASSERT_TRUE(pair.Start(/*server_max=*/1, kWireProtocolVersion).ok());
  // Bypass the negotiated downgrade by dialing a fresh client that
  // claims v2 without asking first.
  RemoteDatabaseOptions options;
  options.port = pair.server->port();
  RemoteTextDatabase eager(options);
  // Negotiation happens lazily on the first batch call and lands on v1,
  // so the fallback path is taken and the call still succeeds.
  auto round = eager.QueryAndFetch("anything", 2);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->documents.size(), 2u);
  EXPECT_EQ(eager.negotiated_version(), 1u);
}

TEST(WireCompatibilityTest, TraceContextNeverSentToPreV4Servers) {
  // A v4 client carrying an ambient trace context must keep working
  // against servers pinned to every older protocol version: the trailer
  // is only injected once negotiation lands on >= 4, and pre-v4 decoders
  // reject trailing bytes as corruption, so success here proves the
  // trailer was withheld.
  for (uint32_t server_max : {1u, 2u, 3u}) {
    VersionedPair pair;
    ASSERT_TRUE(pair.Start(server_max, kWireProtocolVersion).ok());
    ASSERT_EQ(pair.client->negotiated_version(), server_max);
    TraceContext ambient;
    ambient.trace_id_hi = 0x1234;
    ambient.trace_id_lo = 0x5678;
    ambient.parent_span_id = 0x9abc;
    ambient.sampled = true;
    TraceContextScope scope(ambient);
    auto hits = pair.client->RunQuery("anything", 2);
    ASSERT_TRUE(hits.ok())
        << "server_max=" << server_max << ": " << hits.status().ToString();
    EXPECT_EQ(hits->size(), 2u);
  }
}

// --- v5 federation frames -------------------------------------------------

TEST(WireFederationTest, StatsOnlySelectRequestRoundTrips) {
  WireRequest request;
  request.protocol_version = kFederationMinVersion;
  request.request_id = 61;
  request.method = WireMethod::kSelect;
  request.query = "medical imaging";
  request.ranker = "cori";
  request.stats_only = true;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, kFederationMinVersion);
  EXPECT_TRUE(decoded->stats_only);
  EXPECT_FALSE(decoded->has_stats);
  EXPECT_EQ(decoded->query, "medical imaging");
}

TEST(WireFederationTest, HasStatsSelectRequestRoundTripsBitExact) {
  WireRequest request;
  request.protocol_version = kFederationMinVersion;
  request.request_id = 62;
  request.method = WireMethod::kSelect;
  request.query = "medical imaging";
  request.ranker = "kl";
  request.max_results = 10;
  request.has_stats = true;
  request.pinned_epoch = 17;
  request.stats.num_databases = 40;
  request.stats.sum_cw = 123456789;
  request.stats.union_total_terms = 987654321;
  request.stats.terms = {{/*cf=*/12, /*union_ctf=*/3400},
                         {/*cf=*/0, /*union_ctf=*/0}};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->stats_only);
  EXPECT_TRUE(decoded->has_stats);
  EXPECT_EQ(decoded->pinned_epoch, 17u);
  EXPECT_EQ(decoded->stats.num_databases, 40u);
  EXPECT_EQ(decoded->stats.sum_cw, 123456789u);
  EXPECT_EQ(decoded->stats.union_total_terms, 987654321u);
  ASSERT_EQ(decoded->stats.terms.size(), 2u);
  EXPECT_EQ(decoded->stats.terms[0].cf, 12u);
  EXPECT_EQ(decoded->stats.terms[0].union_ctf, 3400u);
  EXPECT_EQ(decoded->stats.terms[1].cf, 0u);
  EXPECT_EQ(decoded->stats.terms[1].union_ctf, 0u);
}

TEST(WireFederationTest, BothScatterGatherFlagsRejectedAsCorruption) {
  WireRequest request;
  request.protocol_version = kFederationMinVersion;
  request.method = WireMethod::kSelect;
  request.query = "q";
  request.ranker = "cori";
  request.stats_only = true;
  request.has_stats = true;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(WireFederationTest, PlainSelectRequestBytesUnchangedFromV3) {
  // The federation extension must not disturb the frames every existing
  // client emits: a plain select still encodes exactly the v3 bytes.
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kSelect);
  request.request_id = 63;
  request.method = WireMethod::kSelect;
  request.query = "medical imaging";
  request.ranker = "bgloss";
  request.max_results = 4;
  std::vector<uint8_t> payload = EncodeRequest(request);
  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, 3u);
  EXPECT_FALSE(decoded->stats_only);
  EXPECT_FALSE(decoded->has_stats);
  // And a hand-appended byte after a v3 body is still Corruption (the
  // v5 flags varint only exists on frames declaring >= v5).
  payload.push_back(0x00);
  EXPECT_TRUE(DecodeRequest(payload).status().IsCorruption());
}

TEST(WireFederationTest, V5SelectRequestCarriesTraceTrailerAfterExtension) {
  WireRequest request;
  request.protocol_version = kFederationMinVersion;
  request.method = WireMethod::kSelect;
  request.query = "q";
  request.ranker = "cori";
  request.stats_only = true;
  request.trace.trace_id_hi = 0xaa;
  request.trace.trace_id_lo = 0xbb;
  request.trace.sampled = true;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->stats_only);
  EXPECT_TRUE(decoded->trace.valid());
  EXPECT_EQ(decoded->trace.trace_id_hi, 0xaau);
}

TEST(WireFederationTest, FederatedSelectResponseRoundTrips) {
  WireResponse response;
  response.protocol_version = kFederationMinVersion;
  response.request_id = 64;
  response.method = WireMethod::kSelect;
  response.epoch = 9;
  response.scores = {{"cooking", 0.75}, {"physics", -0.0}};
  response.partial = true;
  response.down_shards = {"10.0.0.3:7777"};
  response.shard_epochs = {{"10.0.0.1:7777", 9}, {"10.0.0.2:7777", 8}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->partial);
  ASSERT_EQ(decoded->down_shards.size(), 1u);
  EXPECT_EQ(decoded->down_shards[0], "10.0.0.3:7777");
  ASSERT_EQ(decoded->shard_epochs.size(), 2u);
  EXPECT_EQ(decoded->shard_epochs[0].shard, "10.0.0.1:7777");
  EXPECT_EQ(decoded->shard_epochs[0].epoch, 9u);
  EXPECT_EQ(decoded->shard_epochs[1].shard, "10.0.0.2:7777");
  EXPECT_EQ(decoded->shard_epochs[1].epoch, 8u);
  ASSERT_EQ(decoded->scores.size(), 2u);
  EXPECT_TRUE(std::signbit(decoded->scores[1].score));
}

TEST(WireFederationTest, StatsResponseRoundTrips) {
  WireResponse response;
  response.protocol_version = kFederationMinVersion;
  response.method = WireMethod::kSelect;
  response.epoch = 4;
  response.has_stats = true;
  response.stats.num_databases = 7;
  response.stats.sum_cw = 5555;
  response.stats.union_total_terms = 6666;
  response.stats.terms = {{3, 250}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_stats);
  EXPECT_EQ(decoded->epoch, 4u);
  EXPECT_EQ(decoded->stats.num_databases, 7u);
  EXPECT_EQ(decoded->stats.sum_cw, 5555u);
  EXPECT_EQ(decoded->stats.union_total_terms, 6666u);
  ASSERT_EQ(decoded->stats.terms.size(), 1u);
  EXPECT_EQ(decoded->stats.terms[0].cf, 3u);
  EXPECT_EQ(decoded->stats.terms[0].union_ctf, 250u);
}

TEST(WireFederationTest, V3SelectResponseBytesCarryNoExtension) {
  // A response stamped v3 encodes no federation fields, so a v3 client
  // decodes it exactly as before — partial and friends stay default.
  WireResponse response;
  response.protocol_version = 3;
  response.method = WireMethod::kSelect;
  response.epoch = 2;
  response.scores = {{"a", 1.0}};
  response.partial = true;          // ignored at v3 encode
  response.down_shards = {"lost"};  // ignored at v3 encode
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->partial);
  EXPECT_TRUE(decoded->down_shards.empty());
  EXPECT_TRUE(decoded->shard_epochs.empty());
}

TEST(WireFederationTest, ShardInfoRoundTrips) {
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kShardInfo);
  request.request_id = 65;
  request.method = WireMethod::kShardInfo;
  auto decoded_request = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status().ToString();
  EXPECT_EQ(decoded_request->method, WireMethod::kShardInfo);

  WireResponse response;
  response.protocol_version = kFederationMinVersion;
  response.method = WireMethod::kShardInfo;
  response.shard_map_version = 0xfeedfacecafebeef;
  response.shards = {{"10.0.0.1:7777", 3, true, 12},
                     {"10.0.0.2:7777", 0, false, 0}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shard_map_version, 0xfeedfacecafebeefu);
  ASSERT_EQ(decoded->shards.size(), 2u);
  EXPECT_EQ(decoded->shards[0].address, "10.0.0.1:7777");
  EXPECT_EQ(decoded->shards[0].epoch, 3u);
  EXPECT_TRUE(decoded->shards[0].healthy);
  EXPECT_EQ(decoded->shards[0].databases, 12u);
  EXPECT_EQ(decoded->shards[1].address, "10.0.0.2:7777");
  EXPECT_FALSE(decoded->shards[1].healthy);
}

TEST(WireFederationTest, SnapshotFetchRoundTripsBinaryChunk) {
  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kSnapshotFetch);
  request.request_id = 66;
  request.method = WireMethod::kSnapshotFetch;
  request.snapshot_epoch = 12;
  request.snapshot_offset = 65536;
  request.snapshot_chunk_bytes = 4096;
  auto decoded_request = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status().ToString();
  EXPECT_EQ(decoded_request->snapshot_epoch, 12u);
  EXPECT_EQ(decoded_request->snapshot_offset, 65536u);
  EXPECT_EQ(decoded_request->snapshot_chunk_bytes, 4096u);

  WireResponse response;
  response.protocol_version = kFederationMinVersion;
  response.method = WireMethod::kSnapshotFetch;
  response.snapshot_epoch = 12;
  response.snapshot_total_bytes = 1u << 20;
  response.snapshot_offset = 65536;
  response.snapshot_data = std::string("\x00\x01\xff\xfe binary", 11);
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->snapshot_epoch, 12u);
  EXPECT_EQ(decoded->snapshot_total_bytes, 1u << 20);
  EXPECT_EQ(decoded->snapshot_offset, 65536u);
  EXPECT_EQ(decoded->snapshot_data, response.snapshot_data);
}

TEST(WireFederationTest, EveryV5RequestTruncationPrefixIsRejected) {
  WireRequest request;
  request.protocol_version = kFederationMinVersion;
  request.method = WireMethod::kSelect;
  request.query = "q";
  request.ranker = "kl";
  request.has_stats = true;
  request.pinned_epoch = 3;
  request.stats.num_databases = 2;
  request.stats.terms = {{1, 10}, {2, 20}};
  std::vector<uint8_t> payload = EncodeRequest(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeRequest(prefix).ok()) << "prefix " << cut;
  }
}

TEST(WireFederationTest, EveryV5ResponseTruncationPrefixIsRejected) {
  WireResponse response;
  response.protocol_version = kFederationMinVersion;
  response.method = WireMethod::kSelect;
  response.epoch = 2;
  response.scores = {{"a", 1.0}};
  response.partial = true;
  response.down_shards = {"10.0.0.9:1"};
  response.shard_epochs = {{"10.0.0.8:1", 2}};
  std::vector<uint8_t> payload = EncodeResponse(response);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeResponse(prefix).ok()) << "prefix " << cut;
  }
}

TEST(WireCompatibilityTest, TraceContextAcceptedByV4Server) {
  VersionedPair pair;
  ASSERT_TRUE(pair.Start(kWireProtocolVersion, kWireProtocolVersion).ok());
  ASSERT_EQ(pair.client->negotiated_version(), kWireProtocolVersion);
  TraceContext ambient;
  ambient.trace_id_hi = 0x1234;
  ambient.trace_id_lo = 0x5678;
  ambient.sampled = true;
  TraceContextScope scope(ambient);
  auto hits = pair.client->RunQuery("anything", 3);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 3u);
}

}  // namespace
}  // namespace qbs

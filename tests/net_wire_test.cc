// Unit tests for the wire protocol: encode/decode round trips, error
// carriage, malformed-input rejection, and framing over a ByteStream.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"

namespace qbs {
namespace {

// An in-memory ByteStream: writes append to an output buffer, reads
// consume a scripted input buffer.
class MemoryStream : public ByteStream {
 public:
  Status WriteAll(const uint8_t* data, size_t n) override {
    written.insert(written.end(), data, data + n);
    return Status::OK();
  }
  Status ReadFull(uint8_t* data, size_t n) override {
    if (input.size() < n) {
      return Status::Unavailable("connection closed by peer");
    }
    std::memcpy(data, input.data(), n);
    input.erase(input.begin(), input.begin() + static_cast<ptrdiff_t>(n));
    return Status::OK();
  }
  void SetDeadlineMicros(uint64_t) override {}
  void Close() override {}

  std::vector<uint8_t> written;
  std::vector<uint8_t> input;
};

TEST(WireRequestTest, PingRoundTrips) {
  WireRequest request;
  request.request_id = 42;
  request.method = WireMethod::kPing;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, kWireProtocolVersion);
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->method, WireMethod::kPing);
}

TEST(WireRequestTest, RunQueryRoundTrips) {
  WireRequest request;
  request.request_id = std::numeric_limits<uint64_t>::max();
  request.method = WireMethod::kRunQuery;
  request.query = "information retrieval \xc3\xa9";  // non-ASCII survives
  request.max_results = 17;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->method, WireMethod::kRunQuery);
  EXPECT_EQ(decoded->query, request.query);
  EXPECT_EQ(decoded->max_results, 17u);
}

TEST(WireRequestTest, FetchDocumentRoundTrips) {
  WireRequest request;
  request.request_id = 7;
  request.method = WireMethod::kFetchDocument;
  request.handle = "doc-123";
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->handle, "doc-123");
}

TEST(WireRequestTest, EveryTruncationPrefixIsRejectedNotCrashed) {
  WireRequest request;
  request.request_id = 99;
  request.method = WireMethod::kRunQuery;
  request.query = "abcdefgh";
  request.max_results = 10;
  std::vector<uint8_t> payload = EncodeRequest(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    auto decoded = DecodeRequest(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(WireRequestTest, TrailingBytesRejected) {
  std::vector<uint8_t> payload = EncodeRequest(WireRequest{});
  payload.push_back(0);
  EXPECT_TRUE(DecodeRequest(payload).status().IsCorruption());
}

TEST(WireRequestTest, UnknownMethodRejected) {
  WireRequest request;
  request.method = static_cast<WireMethod>(200);
  std::vector<uint8_t> payload = EncodeRequest(request);
  EXPECT_TRUE(DecodeRequest(payload).status().IsCorruption());
}

TEST(WireResponseTest, RunQueryHitsRoundTripBitExact) {
  WireResponse response;
  response.request_id = 5;
  response.method = WireMethod::kRunQuery;
  response.hits = {{"alpha", 1.5}, {"beta", -0.0}, {"gamma", 1e-308}};
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->hits.size(), 3u);
  EXPECT_EQ(decoded->hits[0].handle, "alpha");
  EXPECT_EQ(decoded->hits[0].score, 1.5);
  EXPECT_EQ(decoded->hits[1].handle, "beta");
  EXPECT_TRUE(std::signbit(decoded->hits[1].score));  // -0.0 preserved
  EXPECT_EQ(decoded->hits[2].score, 1e-308);  // subnormal-adjacent exact
}

TEST(WireResponseTest, StatusCarriedAcrossTheWire) {
  WireResponse response;
  response.request_id = 9;
  response.method = WireMethod::kFetchDocument;
  response.status = Status::NotFound("no document named 'x'");
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->status.IsNotFound());
  EXPECT_EQ(decoded->status.message(), "no document named 'x'");
}

TEST(WireResponseTest, EveryStatusCodeRoundTrips) {
  const StatusCode codes[] = {
      StatusCode::kInvalidArgument,   StatusCode::kNotFound,
      StatusCode::kOutOfRange,        StatusCode::kFailedPrecondition,
      StatusCode::kIOError,           StatusCode::kCorruption,
      StatusCode::kUnimplemented,     StatusCode::kInternal,
      StatusCode::kUnavailable,       StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : codes) {
    WireResponse response;
    response.method = WireMethod::kPing;
    response.status = Status(code, "m");
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status.code(), code) << StatusCodeName(code);
  }
}

TEST(WireResponseTest, ServerInfoRoundTrips) {
  WireResponse response;
  response.method = WireMethod::kServerInfo;
  response.server_name = "cacm-like";
  response.server_protocol_version = kWireProtocolVersion;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->server_name, "cacm-like");
  EXPECT_EQ(decoded->server_protocol_version, kWireProtocolVersion);
}

TEST(WireResponseTest, FetchDocumentRoundTripsLargeBinaryDocument) {
  WireResponse response;
  response.method = WireMethod::kFetchDocument;
  response.document.resize(1 << 20);
  for (size_t i = 0; i < response.document.size(); ++i) {
    response.document[i] = static_cast<char>(i * 31);
  }
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->document, response.document);
}

TEST(WireResponseTest, EveryTruncationPrefixIsRejectedNotCrashed) {
  WireResponse response;
  response.request_id = 3;
  response.method = WireMethod::kRunQuery;
  response.hits = {{"h1", 0.5}, {"h2", 0.25}};
  std::vector<uint8_t> payload = EncodeResponse(response);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeResponse(prefix).ok());
  }
}

TEST(WireResponseTest, LyingHitCountRejectedWithoutHugeAllocation) {
  // Header that promises 2^40 hits with an empty body must fail cleanly.
  WireResponse response;
  response.method = WireMethod::kRunQuery;
  std::vector<uint8_t> payload = EncodeResponse(response);
  // The encoded hit count (0, one varint byte) is the final byte; splice
  // in a gigantic count instead.
  payload.pop_back();
  for (uint8_t byte : {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) {
    payload.push_back(byte);
  }
  auto decoded = DecodeResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(FramingTest, WriteThenReadRoundTrips) {
  MemoryStream stream;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteFrame(stream, payload).ok());
  // One WriteAll per frame (the property byte-layer fault injection
  // relies on): header and payload in a single buffer.
  ASSERT_EQ(stream.written.size(), 4u + payload.size());
  stream.input = stream.written;
  auto read_back = ReadFrame(stream, kDefaultMaxFrameBytes);
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(*read_back, payload);
}

TEST(FramingTest, EmptyPayloadRoundTrips) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, {}).ok());
  stream.input = stream.written;
  auto read_back = ReadFrame(stream, kDefaultMaxFrameBytes);
  ASSERT_TRUE(read_back.ok());
  EXPECT_TRUE(read_back->empty());
}

TEST(FramingTest, OversizedFrameRejectedBeforeAllocation) {
  MemoryStream stream;
  stream.input = {0xff, 0xff, 0xff, 0x7f};  // ~2 GiB length prefix
  auto read_back = ReadFrame(stream, 1 << 20);
  ASSERT_FALSE(read_back.ok());
  EXPECT_TRUE(read_back.status().IsCorruption());
}

TEST(FramingTest, TruncatedStreamSurfacesTransportStatus) {
  MemoryStream stream;
  ASSERT_TRUE(WriteFrame(stream, {1, 2, 3, 4, 5, 6, 7, 8}).ok());
  stream.input = stream.written;
  stream.input.resize(stream.input.size() - 3);  // lose the tail
  auto read_back = ReadFrame(stream, kDefaultMaxFrameBytes);
  ASSERT_FALSE(read_back.ok());
  EXPECT_TRUE(read_back.status().IsUnavailable());
}

TEST(FaultyTransportTest, DropsAndTruncatesOnSchedule) {
  auto inner = std::make_unique<MemoryStream>();
  MemoryStream* raw = inner.get();
  FaultyTransport faulty(std::move(inner), {.drop_every_n_writes = 2});
  std::vector<uint8_t> payload = {9, 9, 9};
  ASSERT_TRUE(WriteFrame(faulty, payload).ok());  // write 1: passes
  ASSERT_TRUE(WriteFrame(faulty, payload).ok());  // write 2: dropped
  ASSERT_TRUE(WriteFrame(faulty, payload).ok());  // write 3: passes
  EXPECT_EQ(faulty.writes_dropped(), 1u);
  EXPECT_EQ(raw->written.size(), 2 * (4 + payload.size()));

  auto inner2 = std::make_unique<MemoryStream>();
  MemoryStream* raw2 = inner2.get();
  FaultyTransport trunc(std::move(inner2), {.truncate_every_n_writes = 1});
  ASSERT_TRUE(WriteFrame(trunc, payload).ok());
  EXPECT_EQ(trunc.writes_truncated(), 1u);
  EXPECT_EQ(raw2->written.size(), (4 + payload.size()) / 2);
}

TEST(FaultyTransportTest, FailsReadsOnSchedule) {
  auto inner = std::make_unique<MemoryStream>();
  inner->input = {1, 0, 0, 0, 42, 1, 0, 0, 0, 43};
  FaultyTransport faulty(std::move(inner), {.fail_every_n_reads = 3});
  auto first = ReadFrame(faulty, 1024);  // reads 1, 2
  ASSERT_TRUE(first.ok());
  auto second = ReadFrame(faulty, 1024);  // read 3 fails
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIOError());
  EXPECT_EQ(faulty.reads_failed(), 1u);
}

TEST(WireMethodTest, NamesAreStable) {
  EXPECT_STREQ(WireMethodName(WireMethod::kPing), "ping");
  EXPECT_STREQ(WireMethodName(WireMethod::kServerInfo), "server_info");
  EXPECT_STREQ(WireMethodName(WireMethod::kRunQuery), "run_query");
  EXPECT_STREQ(WireMethodName(WireMethod::kFetchDocument), "fetch_document");
}

}  // namespace
}  // namespace qbs

// Malformed-input tests for the TREC/SGML parser: markup arrives from
// arbitrary files, so every defect must surface as a graceful Status —
// never UB, never a silently wrong document stream. The asan-ubsan
// preset runs these with memory checking on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "corpus/trec_parser.h"

namespace qbs {
namespace {

using DocList = std::vector<std::pair<std::string, std::string>>;

Result<TrecParseStats> Parse(const std::string& input, DocList* docs) {
  std::istringstream in(input);
  return ParseTrecStream(in, [docs](const std::string& docno,
                                    const std::string& text) {
    docs->emplace_back(docno, text);
  });
}

TEST(TrecMalformedTest, UnterminatedDocIsCorruption) {
  DocList docs;
  auto stats = Parse(
      "<DOC>\n<DOCNO> A </DOCNO>\n<TEXT>\nbody text\n</TEXT>\n", &docs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
  EXPECT_TRUE(docs.empty());
}

TEST(TrecMalformedTest, NestedDocIsCorruption) {
  DocList docs;
  auto stats = Parse(
      "<DOC>\n<DOCNO> A </DOCNO>\n"
      "<DOC>\n<DOCNO> B </DOCNO>\n</DOC>\n</DOC>\n",
      &docs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
  EXPECT_NE(stats.status().ToString().find("nested"), std::string::npos);
}

TEST(TrecMalformedTest, MissingDocnoIsCorruption) {
  DocList docs;
  auto stats = Parse("<DOC>\n<TEXT>\nno id\n</TEXT>\n</DOC>\n", &docs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
}

TEST(TrecMalformedTest, NonUtf8BytesPassThroughVerbatim) {
  // TREC collections predate UTF-8; the parser must treat document text
  // as bytes. Latin-1 high bytes and stray continuation bytes must
  // neither crash nor be altered.
  std::string body = "caf\xE9 na\xEFve \xFF\xFE\x80 bytes";
  DocList docs;
  auto stats = Parse(
      "<DOC>\n<DOCNO> BYTES-1 </DOCNO>\n<TEXT>\n" + body +
          "\n</TEXT>\n</DOC>\n",
      &docs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].first, "BYTES-1");
  EXPECT_EQ(docs[0].second, body + "\n");
}

TEST(TrecMalformedTest, UnclosedTextSectionIsUnterminatedDoc) {
  // </DOC> is swallowed by an unclosed <TEXT> section, so the document
  // never terminates: the parser must report, not loop or misattribute.
  DocList docs;
  auto stats = Parse(
      "<DOC>\n<DOCNO> A </DOCNO>\n<TEXT>\nbody\n</DOC>\n", &docs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
}

TEST(TrecMalformedTest, StrayClosingTagsAreSkipped) {
  // Closing tags with no opener are unknown markup inside/outside a
  // document; the parser skips them rather than failing.
  DocList docs;
  auto stats = Parse(
      "</TEXT>\n</DOC-TYPO>\n"
      "<DOC>\n<DOCNO> A </DOCNO>\n<TEXT>\nok\n</TEXT>\n</DOC>\n",
      &docs);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].second, "ok\n");
}

TEST(TrecMalformedTest, EmptyAndWhitespaceOnlyInputs) {
  DocList docs;
  auto stats = Parse("", &docs);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->docs, 0u);

  stats = Parse("\n  \n\t\n", &docs);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->docs, 0u);
  EXPECT_TRUE(docs.empty());
}

TEST(TrecMalformedTest, DocumentAfterCorruptionIsNotReported) {
  // The parser fails fast: once corruption is detected nothing further
  // is emitted, so callers cannot half-ingest a broken file.
  DocList docs;
  auto stats = Parse(
      "<DOC>\n<DOCNO> A </DOCNO>\n<DOC>\n"
      "<DOC>\n<DOCNO> B </DOCNO>\n<TEXT>x</TEXT>\n</DOC>\n",
      &docs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(docs.empty());
}

TEST(TrecMalformedTest, MalformedInlineDocnoYieldsEmptyIdError) {
  // "<DOCNO>" with no closing tag on the line extracts nothing; the
  // document then ends without an id, which is corruption, not UB.
  DocList docs;
  auto stats = Parse("<DOC>\n<DOCNO> dangling\n</DOC>\n", &docs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption());
}

}  // namespace
}  // namespace qbs

// Tests for the paper's metrics, pinned to hand-computed values, including
// the worked examples from the paper itself.
#include <gtest/gtest.h>

#include <string>

#include "lm/language_model.h"
#include "lm/metrics.h"

namespace qbs {
namespace {

LanguageModel ModelFromDf(
    const std::vector<std::pair<std::string, uint64_t>>& dfs) {
  LanguageModel lm;
  for (const auto& [term, df] : dfs) lm.AddTerm(term, df, df);
  return lm;
}

TEST(AverageRanksTest, DistinctScoresGetPositionalRanks) {
  auto ranks = AverageRanks({{"a", 30.0}, {"b", 10.0}, {"c", 20.0}});
  EXPECT_DOUBLE_EQ(ranks["a"], 1.0);
  EXPECT_DOUBLE_EQ(ranks["c"], 2.0);
  EXPECT_DOUBLE_EQ(ranks["b"], 3.0);
}

TEST(AverageRanksTest, TiesShareAverageRank) {
  auto ranks = AverageRanks({{"a", 9.0}, {"b", 5.0}, {"c", 5.0}, {"d", 1.0}});
  EXPECT_DOUBLE_EQ(ranks["a"], 1.0);
  EXPECT_DOUBLE_EQ(ranks["b"], 2.5);  // ties span ranks 2 and 3
  EXPECT_DOUBLE_EQ(ranks["c"], 2.5);
  EXPECT_DOUBLE_EQ(ranks["d"], 4.0);
}

TEST(AverageRanksTest, AllTiedGetMiddleRank) {
  auto ranks = AverageRanks({{"a", 1.0}, {"b", 1.0}, {"c", 1.0}});
  EXPECT_DOUBLE_EQ(ranks["a"], 2.0);
  EXPECT_DOUBLE_EQ(ranks["b"], 2.0);
  EXPECT_DOUBLE_EQ(ranks["c"], 2.0);
}

TEST(PercentageLearnedTest, CountsCoveredActualVocabulary) {
  LanguageModel actual = ModelFromDf({{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  LanguageModel learned = ModelFromDf({{"a", 1}, {"c", 1}, {"zzz", 1}});
  // 2 of 4 actual terms learned; the extra learned term does not count.
  EXPECT_DOUBLE_EQ(PercentageLearned(learned, actual), 0.5);
}

TEST(PercentageLearnedTest, EmptyActualIsFullyLearned) {
  LanguageModel actual;
  LanguageModel learned = ModelFromDf({{"a", 1}});
  EXPECT_DOUBLE_EQ(PercentageLearned(learned, actual), 1.0);
}

TEST(PercentageLearnedTest, EmptyLearnedIsZero) {
  LanguageModel actual = ModelFromDf({{"a", 1}});
  LanguageModel learned;
  EXPECT_DOUBLE_EQ(PercentageLearned(learned, actual), 0.0);
}

// The paper's §4.3.2 worked example: a database of 99 "apple" and 1 "bear";
// a learned model containing just "apple" has ctf ratio 99/100.
TEST(CtfRatioTest, PaperAppleBearExample) {
  LanguageModel actual;
  actual.AddTerm("apple", 10, 99);
  actual.AddTerm("bear", 1, 1);
  LanguageModel learned;
  learned.AddTerm("apple", 1, 1);
  EXPECT_DOUBLE_EQ(CtfRatio(learned, actual), 0.99);
}

TEST(CtfRatioTest, FullCoverageIsOne) {
  LanguageModel actual = ModelFromDf({{"a", 5}, {"b", 3}});
  EXPECT_DOUBLE_EQ(CtfRatio(actual, actual), 1.0);
}

TEST(CtfRatioTest, LearnedFrequenciesAreIrrelevant) {
  // Only membership in the learned vocabulary matters; weights come from
  // the actual model.
  LanguageModel actual;
  actual.AddTerm("a", 1, 80);
  actual.AddTerm("b", 1, 20);
  LanguageModel learned_lowfreq;
  learned_lowfreq.AddTerm("a", 1, 1);
  LanguageModel learned_highfreq;
  learned_highfreq.AddTerm("a", 1000, 100000);
  EXPECT_DOUBLE_EQ(CtfRatio(learned_lowfreq, actual), 0.8);
  EXPECT_DOUBLE_EQ(CtfRatio(learned_highfreq, actual), 0.8);
}

TEST(SpearmanTest, IdenticalRankingsGiveOne) {
  LanguageModel a = ModelFromDf({{"t1", 40}, {"t2", 30}, {"t3", 20}, {"t4", 10}});
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, a), 1.0);
}

TEST(SpearmanTest, ReversedRankingsGiveMinusOne) {
  LanguageModel a = ModelFromDf({{"t1", 40}, {"t2", 30}, {"t3", 20}, {"t4", 10}});
  LanguageModel b = ModelFromDf({{"t1", 10}, {"t2", 20}, {"t3", 30}, {"t4", 40}});
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, b), -1.0);
  SpearmanOptions tie_corrected;
  tie_corrected.tie_corrected = true;
  EXPECT_NEAR(SpearmanRankCorrelation(a, b, tie_corrected), -1.0, 1e-12);
}

TEST(SpearmanTest, HandComputedPartialAgreement) {
  // Ranks in a: t1=1 t2=2 t3=3; in b: t1=2 t2=1 t3=3.
  // sum d^2 = 1 + 1 + 0 = 2; R = 1 - 6*2/(3*8) = 0.5.
  LanguageModel a = ModelFromDf({{"t1", 30}, {"t2", 20}, {"t3", 10}});
  LanguageModel b = ModelFromDf({{"t1", 20}, {"t2", 30}, {"t3", 10}});
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, b), 0.5);
}

TEST(SpearmanTest, ComputedOverCommonTermsOnly) {
  // Terms unique to one side are ignored (paper §4.1: "compared only on
  // words that appeared in both language models").
  LanguageModel a =
      ModelFromDf({{"t1", 30}, {"t2", 20}, {"t3", 10}, {"only_a", 99}});
  LanguageModel b =
      ModelFromDf({{"t1", 300}, {"t2", 200}, {"t3", 100}, {"only_b", 1}});
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, b), 1.0);
}

TEST(SpearmanTest, DegenerateCases) {
  LanguageModel empty;
  LanguageModel one = ModelFromDf({{"x", 1}});
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(empty, one), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(one, one), 1.0);
}

TEST(SpearmanTest, MetricSelectsRankingStatistic) {
  // By df the models agree; by avg_tf they reverse.
  LanguageModel a, b;
  a.AddTerm("t1", 10, 100);  // df 10, avg 10
  a.AddTerm("t2", 5, 10);    // df 5, avg 2
  b.AddTerm("t1", 20, 40);   // df 20, avg 2
  b.AddTerm("t2", 8, 80);    // df 8, avg 10
  SpearmanOptions by_df;
  by_df.metric = TermMetric::kDf;
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, b, by_df), 1.0);
  SpearmanOptions by_avg;
  by_avg.metric = TermMetric::kAvgTf;
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, b, by_avg), -1.0);
}

TEST(SpearmanTest, TieCorrectedHandlesMassTies) {
  // a has all ties; the simple formula sees zero rank differences and
  // reports 1.0, the tie-corrected Pearson reports 0 (no variance).
  LanguageModel a = ModelFromDf({{"t1", 5}, {"t2", 5}, {"t3", 5}});
  LanguageModel b = ModelFromDf({{"t1", 3}, {"t2", 2}, {"t3", 1}});
  SpearmanOptions corrected;
  corrected.tie_corrected = true;
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, b, corrected), 0.0);
}

// The paper's §6 worked example: 100 terms, two adjacent terms swap ranks,
// rdiff = (1/(100*100)) * 2 = 0.0002.
TEST(RDiffTest, PaperSwapExample) {
  LanguageModel a, b;
  for (int i = 1; i <= 100; ++i) {
    std::string term = "term" + std::to_string(i);
    uint64_t df_a = 101 - i;  // rank i
    uint64_t df_b = df_a;
    if (i == 4) df_b = 101 - 5;  // swap ranks 4 and 5
    if (i == 5) df_b = 101 - 4;
    a.AddTerm(term, df_a, df_a);
    b.AddTerm(term, df_b, df_b);
  }
  EXPECT_NEAR(RDiff(a, b), 0.0002, 1e-12);
}

TEST(RDiffTest, IdenticalRankingsGiveZero) {
  LanguageModel a = ModelFromDf({{"x", 3}, {"y", 2}, {"z", 1}});
  EXPECT_DOUBLE_EQ(RDiff(a, a), 0.0);
}

TEST(RDiffTest, ReversedSmallRanking) {
  // n=2 reversed: |d| sum = 2, rdiff = 2/4 = 0.5 (the documented maximum
  // for permutations).
  LanguageModel a = ModelFromDf({{"x", 2}, {"y", 1}});
  LanguageModel b = ModelFromDf({{"x", 1}, {"y", 2}});
  EXPECT_DOUBLE_EQ(RDiff(a, b), 0.5);
}

TEST(RDiffTest, FewerThanTwoCommonTermsIsZero) {
  LanguageModel a = ModelFromDf({{"x", 1}});
  LanguageModel b = ModelFromDf({{"y", 1}});
  EXPECT_DOUBLE_EQ(RDiff(a, b), 0.0);
}

TEST(CompareLanguageModelsTest, BundlesAllMetrics) {
  LanguageModel actual;
  actual.AddTerm("apple", 10, 99);
  actual.AddTerm("bear", 1, 1);
  actual.AddTerm("cherry", 5, 20);
  LanguageModel learned;
  learned.AddTerm("apple", 3, 30);
  learned.AddTerm("cherry", 2, 4);

  LmComparison cmp = CompareLanguageModels(learned, actual);
  EXPECT_NEAR(cmp.pct_vocab_learned, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cmp.ctf_ratio, 119.0 / 120.0, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.spearman_df, 1.0);  // apple > cherry in both
  EXPECT_EQ(cmp.common_terms, 2u);
}

TEST(TermMetricNameTest, Names) {
  EXPECT_STREQ(TermMetricName(TermMetric::kDf), "df");
  EXPECT_STREQ(TermMetricName(TermMetric::kCtf), "ctf");
  EXPECT_STREQ(TermMetricName(TermMetric::kAvgTf), "avg_tf");
}

}  // namespace
}  // namespace qbs

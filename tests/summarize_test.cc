// Tests for database-content summarization (paper §7, Table 4).
#include <gtest/gtest.h>

#include <string>

#include "summarize/summarizer.h"

namespace qbs {
namespace {

LanguageModel SupportLikeModel() {
  LanguageModel lm;
  // Content terms with high avg_tf (concentrated repetition).
  lm.AddTerm("excel", 20, 200);     // avg 10
  lm.AddTerm("foxpro", 10, 80);     // avg 8
  lm.AddTerm("windows", 40, 200);   // avg 5
  // Broad, flat terms (low avg_tf despite high df).
  lm.AddTerm("click", 100, 150);    // avg 1.5
  lm.AddTerm("press", 90, 120);     // avg 1.33
  // Stopwords with huge counts — must not appear in summaries.
  lm.AddTerm("the", 200, 4000);
  lm.AddTerm("and", 200, 3000);
  // Noise: single-document term.
  lm.AddTerm("xyzzy", 1, 50);
  lm.set_num_docs(200);
  return lm;
}

TEST(SummarizerTest, AvgTfRanksContentTermsFirst) {
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel());
  ASSERT_GE(s.terms.size(), 3u);
  EXPECT_EQ(s.db_name, "support");
  EXPECT_EQ(s.terms[0].first, "excel");
  EXPECT_EQ(s.terms[1].first, "foxpro");
  EXPECT_EQ(s.terms[2].first, "windows");
}

TEST(SummarizerTest, StopwordsExcluded) {
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel());
  for (const auto& [term, score] : s.terms) {
    EXPECT_NE(term, "the");
    EXPECT_NE(term, "and");
  }
}

TEST(SummarizerTest, MinDfFiltersOneOffNoise) {
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel());
  for (const auto& [term, score] : s.terms) {
    EXPECT_NE(term, "xyzzy");  // df 1 < min_df 2, despite huge avg_tf
  }
}

TEST(SummarizerTest, TopKLimitsOutput) {
  SummaryOptions opts;
  opts.top_k = 2;
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel(), opts);
  ASSERT_EQ(s.terms.size(), 2u);
  EXPECT_EQ(s.terms[0].first, "excel");
}

TEST(SummarizerTest, DfMetricPrefersBroadTerms) {
  SummaryOptions opts;
  opts.metric = TermMetric::kDf;
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel(), opts);
  ASSERT_FALSE(s.terms.empty());
  EXPECT_EQ(s.terms[0].first, "click");  // df 100, highest non-stopword
  EXPECT_EQ(s.metric, TermMetric::kDf);
}

TEST(SummarizerTest, CtfMetric) {
  SummaryOptions opts;
  opts.metric = TermMetric::kCtf;
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel(), opts);
  ASSERT_FALSE(s.terms.empty());
  // excel and windows tie at ctf 200; lexicographic tie-break.
  EXPECT_EQ(s.terms[0].first, "excel");
  EXPECT_EQ(s.terms[1].first, "windows");
}

TEST(SummarizerTest, CustomStopwordList) {
  StopwordList custom({"excel"});
  SummaryOptions opts;
  opts.stopwords = &custom;
  DatabaseSummary s = SummarizeDatabase("support", SupportLikeModel(), opts);
  ASSERT_FALSE(s.terms.empty());
  // The custom list fully replaces the default: "excel" is suppressed and
  // "the" (avg_tf 20, the new maximum) surfaces.
  EXPECT_EQ(s.terms[0].first, "the");
  for (const auto& [term, score] : s.terms) EXPECT_NE(term, "excel");
}

TEST(SummarizerTest, EmptyModelYieldsEmptySummary) {
  LanguageModel empty;
  DatabaseSummary s = SummarizeDatabase("empty", empty);
  EXPECT_TRUE(s.terms.empty());
}

TEST(SummarizerTest, MinTermLengthFilters) {
  LanguageModel lm;
  lm.AddTerm("nt", 10, 100);
  lm.AddTerm("windows", 10, 100);
  SummaryOptions opts;
  opts.min_term_length = 3;
  DatabaseSummary s = SummarizeDatabase("db", lm, opts);
  ASSERT_EQ(s.terms.size(), 1u);
  EXPECT_EQ(s.terms[0].first, "windows");
  // Default (2) keeps "nt", as in the paper's Table 4.
  SummaryOptions defaults;
  EXPECT_EQ(SummarizeDatabase("db", lm, defaults).terms.size(), 2u);
}

}  // namespace
}  // namespace qbs

// Tests for the core contribution: term selection, stopping policy, and the
// query-based sampler, including convergence properties on a known corpus.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "sampling/sampler.h"
#include "sampling/stopping.h"
#include "sampling/term_selector.h"

namespace qbs {
namespace {

// --- TermFilter ---

TEST(TermFilterTest, PaperEligibilityRules) {
  TermFilter filter;  // defaults: >= 3 chars, no numbers
  EXPECT_TRUE(filter.IsEligible("apple"));
  EXPECT_TRUE(filter.IsEligible("abc"));
  EXPECT_FALSE(filter.IsEligible("ab"));
  EXPECT_FALSE(filter.IsEligible(""));
  EXPECT_FALSE(filter.IsEligible("1999"));
  EXPECT_TRUE(filter.IsEligible("b2b"));  // digits allowed, pure numbers not
}

TEST(TermFilterTest, ConfigurableRules) {
  TermFilter filter;
  filter.min_length = 1;
  filter.exclude_numbers = false;
  EXPECT_TRUE(filter.IsEligible("a"));
  EXPECT_TRUE(filter.IsEligible("42"));
  filter.max_length = 4;
  EXPECT_FALSE(filter.IsEligible("toolong"));
}

// --- Selectors ---

LanguageModel ThreeTermModel() {
  LanguageModel lm;
  lm.AddTerm("frequent", 30, 90);   // df 30, ctf 90, avg 3
  lm.AddTerm("middling", 20, 100);  // df 20, ctf 100, avg 5
  lm.AddTerm("rare", 2, 20);        // df 2, ctf 20, avg 10
  lm.AddTerm("no", 50, 500);        // ineligible: too short
  lm.AddTerm("1999", 40, 400);      // ineligible: number
  return lm;
}

TEST(TermSelectorTest, DfPicksHighestDocumentFrequency) {
  auto sel = MakeTermSelector(SelectionStrategy::kDfLearned, TermFilter{});
  Rng rng(1);
  LanguageModel lm = ThreeTermModel();
  auto pick = sel->Select(lm, {}, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, "frequent");
  EXPECT_EQ(sel->name(), "df_llm");
}

TEST(TermSelectorTest, CtfPicksHighestCollectionFrequency) {
  auto sel = MakeTermSelector(SelectionStrategy::kCtfLearned, TermFilter{});
  Rng rng(1);
  LanguageModel lm = ThreeTermModel();
  EXPECT_EQ(*sel->Select(lm, {}, rng), "middling");
}

TEST(TermSelectorTest, AvgTfPicksHighestAverage) {
  auto sel = MakeTermSelector(SelectionStrategy::kAvgTfLearned, TermFilter{});
  Rng rng(1);
  LanguageModel lm = ThreeTermModel();
  EXPECT_EQ(*sel->Select(lm, {}, rng), "rare");
}

TEST(TermSelectorTest, UsedTermsAreSkipped) {
  auto sel = MakeTermSelector(SelectionStrategy::kDfLearned, TermFilter{});
  Rng rng(1);
  LanguageModel lm = ThreeTermModel();
  std::unordered_set<std::string> used = {"frequent"};
  EXPECT_EQ(*sel->Select(lm, used, rng), "middling");
  used.insert("middling");
  used.insert("rare");
  EXPECT_FALSE(sel->Select(lm, used, rng).has_value());
}

TEST(TermSelectorTest, RandomSelectsOnlyEligibleUnused) {
  auto sel = MakeTermSelector(SelectionStrategy::kRandomLearned, TermFilter{});
  Rng rng(42);
  LanguageModel lm = ThreeTermModel();
  std::unordered_set<std::string> used;
  std::set<std::string> picked;
  for (int i = 0; i < 3; ++i) {
    auto pick = sel->Select(lm, used, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(used.insert(*pick).second);
    picked.insert(*pick);
  }
  EXPECT_EQ(picked, (std::set<std::string>{"frequent", "middling", "rare"}));
  EXPECT_FALSE(sel->Select(lm, used, rng).has_value());
}

TEST(TermSelectorTest, RandomIsRoughlyUniform) {
  auto sel = MakeTermSelector(SelectionStrategy::kRandomLearned, TermFilter{});
  Rng rng(9);
  LanguageModel lm = ThreeTermModel();
  std::map<std::string, int> counts;
  for (int i = 0; i < 3000; ++i) {
    ++counts[*sel->Select(lm, {}, rng)];
  }
  for (const char* t : {"frequent", "middling", "rare"}) {
    EXPECT_NEAR(counts[t], 1000, 120) << t;
  }
}

TEST(TermSelectorTest, OtherModelSelectsFromOther) {
  LanguageModel other;
  other.AddTerm("elsewhere", 1, 1);
  auto sel =
      MakeTermSelector(SelectionStrategy::kRandomOther, TermFilter{}, &other);
  Rng rng(1);
  LanguageModel learned = ThreeTermModel();
  EXPECT_EQ(*sel->Select(learned, {}, rng), "elsewhere");
  EXPECT_EQ(sel->name(), "random_olm");
}

TEST(TermSelectorTest, EmptyLearnedModelYieldsNothing) {
  auto sel = MakeTermSelector(SelectionStrategy::kRandomLearned, TermFilter{});
  Rng rng(1);
  LanguageModel empty;
  EXPECT_FALSE(sel->Select(empty, {}, rng).has_value());
}

TEST(RandomEligibleTermTest, RespectsFilter) {
  LanguageModel lm;
  lm.AddTerm("ok_term", 1, 1);
  lm.AddTerm("a", 1, 1);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    auto pick = RandomEligibleTerm(lm, TermFilter{}, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, "ok_term");
  }
  LanguageModel hopeless;
  hopeless.AddTerm("x", 1, 1);
  EXPECT_FALSE(RandomEligibleTerm(hopeless, TermFilter{}, rng).has_value());
}

TEST(SelectionStrategyNameTest, AllNamed) {
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kRandomLearned),
               "random_llm");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kRandomOther),
               "random_olm");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kDfLearned), "df_llm");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kCtfLearned),
               "ctf_llm");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kAvgTfLearned),
               "avg_tf_llm");
}

// --- StoppingPolicy ---

TEST(StoppingPolicyTest, DocumentBudget) {
  StoppingOptions opts;
  opts.max_documents = 3;
  StoppingPolicy policy(opts);
  EXPECT_FALSE(policy.ShouldStop());
  policy.OnDocument();
  policy.OnDocument();
  EXPECT_FALSE(policy.ShouldStop());
  policy.OnDocument();
  EXPECT_TRUE(policy.ShouldStop());
  EXPECT_EQ(policy.reason(), "document budget reached");
}

TEST(StoppingPolicyTest, QueryBudget) {
  StoppingOptions opts;
  opts.max_documents = 0;
  opts.max_queries = 2;
  StoppingPolicy policy(opts);
  policy.OnQuery();
  EXPECT_FALSE(policy.ShouldStop());
  policy.OnQuery();
  EXPECT_TRUE(policy.ShouldStop());
  EXPECT_EQ(policy.reason(), "query budget reached");
}

TEST(StoppingPolicyTest, SnapshotCadence) {
  StoppingOptions opts;
  opts.snapshot_interval = 2;
  StoppingPolicy policy(opts);
  EXPECT_FALSE(policy.SnapshotDue());
  policy.OnDocument();
  EXPECT_FALSE(policy.SnapshotDue());
  policy.OnDocument();
  EXPECT_TRUE(policy.SnapshotDue());
  policy.OnSnapshot(-1.0);
  EXPECT_FALSE(policy.SnapshotDue());
  policy.OnDocument();
  policy.OnDocument();
  EXPECT_TRUE(policy.SnapshotDue());
}

TEST(StoppingPolicyTest, RdiffConvergenceNeedsConsecutiveHits) {
  StoppingOptions opts;
  opts.max_documents = 0;
  opts.max_queries = 0;
  opts.rdiff_threshold = 0.01;
  opts.rdiff_consecutive = 2;
  StoppingPolicy policy(opts);
  policy.OnSnapshot(-1.0);  // first snapshot: no rdiff yet
  EXPECT_FALSE(policy.ShouldStop());
  policy.OnSnapshot(0.005);
  EXPECT_FALSE(policy.ShouldStop());
  policy.OnSnapshot(0.5);  // divergence resets the streak
  EXPECT_FALSE(policy.ShouldStop());
  policy.OnSnapshot(0.005);
  policy.OnSnapshot(0.003);
  EXPECT_TRUE(policy.ShouldStop());
  EXPECT_EQ(policy.reason(), "rdiff converged");
}

// --- QueryBasedSampler ---

class SamplerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "samplerdb";
    spec.num_docs = 800;
    spec.vocab_size = 40'000;
    spec.num_topics = 6;
    spec.topic_vocab_size = 400;
    spec.seed = 77;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
    actual_ = new LanguageModel(engine_->ActualLanguageModel());
  }

  static void TearDownTestSuite() {
    delete actual_;
    actual_ = nullptr;
    delete engine_;
    engine_ = nullptr;
  }

  SamplerOptions BaseOptions(size_t max_docs = 100) {
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = max_docs;
    opts.initial_term = PickInitialTerm();
    opts.seed = 5;
    return opts;
  }

  std::string PickInitialTerm() {
    Rng rng(99);
    auto term = RandomEligibleTerm(*actual_, TermFilter{}, rng);
    EXPECT_TRUE(term.has_value());
    return *term;
  }

  static SearchEngine* engine_;
  static LanguageModel* actual_;
};

SearchEngine* SamplerTest::engine_ = nullptr;
LanguageModel* SamplerTest::actual_ = nullptr;

TEST_F(SamplerTest, StopsAtDocumentBudget) {
  QueryBasedSampler sampler(engine_, BaseOptions(60));
  auto result = sampler.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents_examined, 60u);
  EXPECT_EQ(result->stop_reason, "document budget reached");
  EXPECT_GE(result->queries_run, 60u / 4);
  EXPECT_EQ(result->learned.num_docs(), 60u);
}

TEST_F(SamplerTest, LearnedModelIsRawTermSpace) {
  QueryBasedSampler sampler(engine_, BaseOptions(40));
  auto result = sampler.Run();
  ASSERT_TRUE(result.ok());
  // Function words are kept in the learned (raw) model (paper §4.1)...
  EXPECT_TRUE(result->learned.Contains("the"));
  // ...but the database's actual model has them stopped.
  EXPECT_FALSE(actual_->Contains("the"));
}

TEST_F(SamplerTest, StemmedModelTracksRawModel) {
  QueryBasedSampler sampler(engine_, BaseOptions(40));
  auto result = sampler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->learned_stemmed.num_docs(), result->learned.num_docs());
  EXPECT_EQ(result->learned_stemmed.total_term_count(),
            result->learned.total_term_count());
  // Stemming can only merge terms.
  EXPECT_LE(result->learned_stemmed.vocabulary_size(),
            result->learned.vocabulary_size());
}

TEST_F(SamplerTest, DeterministicForSameSeed) {
  auto r1 = QueryBasedSampler(engine_, BaseOptions(40)).Run();
  auto r2 = QueryBasedSampler(engine_, BaseOptions(40)).Run();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->queries.size(), r2->queries.size());
  for (size_t i = 0; i < r1->queries.size(); ++i) {
    EXPECT_EQ(r1->queries[i].term, r2->queries[i].term);
    EXPECT_EQ(r1->queries[i].new_docs, r2->queries[i].new_docs);
  }
}

TEST_F(SamplerTest, CtfRatioGrowsWithSampleSize) {
  auto small = QueryBasedSampler(engine_, BaseOptions(25)).Run();
  auto large = QueryBasedSampler(engine_, BaseOptions(250)).Run();
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  double ratio_small = CtfRatio(small->learned_stemmed, *actual_);
  double ratio_large = CtfRatio(large->learned_stemmed, *actual_);
  EXPECT_GT(ratio_large, ratio_small);
  // The paper's headline: frequent vocabulary is covered after a few
  // hundred documents.
  EXPECT_GT(ratio_large, 0.6);
}

TEST_F(SamplerTest, SpearmanBecomesStronglyPositive) {
  auto result = QueryBasedSampler(engine_, BaseOptions(250)).Run();
  ASSERT_TRUE(result.ok());
  double rho = SpearmanRankCorrelation(result->learned_stemmed, *actual_);
  EXPECT_GT(rho, 0.5);  // small homogeneous corpus converges fast (Fig. 2)
}

TEST_F(SamplerTest, SnapshotsRecordedAtInterval) {
  SamplerOptions opts = BaseOptions(100);
  opts.stopping.snapshot_interval = 25;
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->snapshots.size(), 4u);
  EXPECT_EQ(result->snapshots[0].documents, 25u);
  EXPECT_EQ(result->snapshots[3].documents, 100u);
  EXPECT_LT(result->snapshots[0].rdiff_from_prev, 0.0);  // first has none
  for (size_t i = 1; i < result->snapshots.size(); ++i) {
    EXPECT_GE(result->snapshots[i].rdiff_from_prev, 0.0);
  }
}

TEST_F(SamplerTest, RdiffStoppingTerminatesEarly) {
  SamplerOptions opts = BaseOptions(0);  // no document budget
  opts.stopping.max_documents = 0;
  opts.stopping.max_queries = 2000;
  opts.stopping.snapshot_interval = 25;
  opts.stopping.rdiff_threshold = 0.05;  // generous: should trip quickly
  opts.stopping.rdiff_consecutive = 2;
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stop_reason, "rdiff converged");
  EXPECT_LT(result->documents_examined, 800u);
}

TEST_F(SamplerTest, ObserverSeesEveryDocument) {
  SamplerOptions opts = BaseOptions(30);
  QueryBasedSampler sampler(engine_, opts);
  size_t calls = 0;
  size_t last_count = 0;
  sampler.set_document_observer(
      [&](size_t docs, const LanguageModel& raw, const LanguageModel&) {
        ++calls;
        EXPECT_EQ(docs, last_count + 1);
        last_count = docs;
        EXPECT_GT(raw.vocabulary_size(), 0u);
      });
  auto result = sampler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 30u);
}

TEST_F(SamplerTest, CollectDocumentsKeepsRawText) {
  SamplerOptions opts = BaseOptions(20);
  opts.collect_documents = true;
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->sampled_documents.size(), 20u);
  for (const auto& text : result->sampled_documents) {
    EXPECT_FALSE(text.empty());
  }
}

TEST_F(SamplerTest, QueriesNeverRepeatTerms) {
  auto result = QueryBasedSampler(engine_, BaseOptions(120)).Run();
  ASSERT_TRUE(result.ok());
  std::set<std::string> terms;
  for (const auto& q : result->queries) {
    EXPECT_TRUE(terms.insert(q.term).second) << "repeated: " << q.term;
  }
}

TEST_F(SamplerTest, DuplicateHitsAreCountedNotReexamined) {
  auto result = QueryBasedSampler(engine_, BaseOptions(150)).Run();
  ASSERT_TRUE(result.ok());
  // With topical queries on a small corpus, some hits repeat.
  EXPECT_GT(result->duplicate_hits, 0u);
  size_t new_docs_total = 0;
  for (const auto& q : result->queries) new_docs_total += q.new_docs;
  EXPECT_EQ(new_docs_total, result->documents_examined);
}

TEST_F(SamplerTest, NoDedupAblationInflatesModel) {
  SamplerOptions dedup = BaseOptions(100);
  SamplerOptions nodedup = BaseOptions(100);
  nodedup.dedup_documents = false;
  auto r1 = QueryBasedSampler(engine_, dedup).Run();
  auto r2 = QueryBasedSampler(engine_, nodedup).Run();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Without dedup the same 100-document budget covers fewer distinct
  // documents, so the vocabulary is smaller or equal.
  EXPECT_LE(r2->learned.vocabulary_size(), r1->learned.vocabulary_size());
  EXPECT_EQ(r2->duplicate_hits, 0u);  // nothing is treated as duplicate
}

TEST_F(SamplerTest, FrequencyStrategiesRunToBudget) {
  for (SelectionStrategy strategy :
       {SelectionStrategy::kDfLearned, SelectionStrategy::kCtfLearned,
        SelectionStrategy::kAvgTfLearned}) {
    SamplerOptions opts = BaseOptions(60);
    opts.strategy = strategy;
    auto result = QueryBasedSampler(engine_, opts).Run();
    ASSERT_TRUE(result.ok()) << SelectionStrategyName(strategy);
    EXPECT_EQ(result->documents_examined, 60u)
        << SelectionStrategyName(strategy);
  }
}

TEST_F(SamplerTest, OtherModelStrategyUsesReference) {
  SamplerOptions opts = BaseOptions(60);
  opts.strategy = SelectionStrategy::kRandomOther;
  opts.other_model = actual_;
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->documents_examined, 60u);
}

TEST_F(SamplerTest, MissingInitialTermFails) {
  SamplerOptions opts = BaseOptions(10);
  opts.initial_term = "";
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST_F(SamplerTest, RandomOtherWithoutModelFails) {
  SamplerOptions opts = BaseOptions(10);
  opts.strategy = SelectionStrategy::kRandomOther;
  opts.other_model = nullptr;
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST_F(SamplerTest, ZeroDocsPerQueryFails) {
  SamplerOptions opts = BaseOptions(10);
  opts.docs_per_query = 0;
  auto result = QueryBasedSampler(engine_, opts).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(SamplerTest, RetrievalModesLearnIdenticalModels) {
  // The three retrieval modes trade RPCs for transfer; the learned model
  // must not notice. Byte-identical serialized output, not just stats.
  auto run = [&](RetrievalMode mode) {
    SamplerOptions opts = BaseOptions(80);
    opts.retrieval = mode;
    return QueryBasedSampler(engine_, opts).Run();
  };
  auto single = run(RetrievalMode::kSingleFetch);
  auto query_and_fetch = run(RetrievalMode::kQueryAndFetch);
  auto fetch_batch = run(RetrievalMode::kFetchBatch);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(query_and_fetch.ok());
  ASSERT_TRUE(fetch_batch.ok());

  std::ostringstream single_bytes, qaf_bytes, batch_bytes;
  ASSERT_TRUE(single->learned.Save(single_bytes).ok());
  ASSERT_TRUE(query_and_fetch->learned.Save(qaf_bytes).ok());
  ASSERT_TRUE(fetch_batch->learned.Save(batch_bytes).ok());
  EXPECT_EQ(single_bytes.str(), qaf_bytes.str());
  EXPECT_EQ(single_bytes.str(), batch_bytes.str());

  EXPECT_EQ(single->documents_examined, 80u);
  EXPECT_EQ(query_and_fetch->documents_examined, 80u);
  EXPECT_EQ(fetch_batch->documents_examined, 80u);
  EXPECT_EQ(single->duplicate_hits, fetch_batch->duplicate_hits);

  // Only kQueryAndFetch transfers documents it then discards; the modes
  // that fetch after dedup and budget trimming never overfetch here.
  EXPECT_EQ(single->overfetched_docs, 0u);
  EXPECT_EQ(fetch_batch->overfetched_docs, 0u);
  // kQueryAndFetch pays for every duplicate hit (plus any round
  // remainder discarded when the budget fires mid-round).
  EXPECT_GE(query_and_fetch->overfetched_docs,
            query_and_fetch->duplicate_hits);
}

TEST(SamplerEdgeTest, TinyDatabaseExhaustsTerms) {
  SearchEngine engine("tiny");
  ASSERT_TRUE(engine.AddDocument("d1", "alpha beta gamma").ok());
  SamplerOptions opts;
  opts.initial_term = "alpha";
  opts.stopping.max_documents = 100;  // unreachable
  opts.stopping.max_queries = 1000;
  auto result = QueryBasedSampler(&engine, opts).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->documents_examined, 1u);
  EXPECT_EQ(result->stop_reason, "no eligible query terms remain");
}

TEST(SamplerEdgeTest, InitialTermAbsentFromDatabase) {
  SearchEngine engine("absent");
  ASSERT_TRUE(engine.AddDocument("d1", "alpha beta gamma").ok());
  SamplerOptions opts;
  opts.initial_term = "nonexistentterm";
  opts.stopping.max_documents = 10;
  auto result = QueryBasedSampler(&engine, opts).Run();
  ASSERT_TRUE(result.ok());
  // The first query fails; the learned model is empty, so no further terms
  // can be selected.
  EXPECT_EQ(result->documents_examined, 0u);
  EXPECT_EQ(result->failed_queries, 1u);
  EXPECT_EQ(result->stop_reason, "no eligible query terms remain");
}

TEST(SamplerEdgeTest, QueryBudgetStopsHopelessSampling) {
  SearchEngine engine("hopeless");
  // Single word repeated: after the first query there is one eligible term
  // already used... make several docs so queries succeed but model is tiny.
  ASSERT_TRUE(engine.AddDocument("d1", "solitary").ok());
  SamplerOptions opts;
  opts.initial_term = "solitary";
  opts.stopping.max_documents = 50;
  opts.stopping.max_queries = 1;
  auto result = QueryBasedSampler(&engine, opts).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries_run, 1u);
  EXPECT_EQ(result->stop_reason, "query budget reached");
}

}  // namespace
}  // namespace qbs

// Parameterized invariant sweeps over the sampler: for every combination
// of docs-per-query and selection strategy, the core bookkeeping
// invariants must hold exactly.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "sampling/sampler.h"

namespace qbs {
namespace {

struct SweepCase {
  size_t docs_per_query;
  SelectionStrategy strategy;
};

// Shared corpus for the whole sweep.
SearchEngine* SweepEngine() {
  static SearchEngine* engine = [] {
    SyntheticCorpusSpec spec;
    spec.name = "sweepdb";
    spec.num_docs = 700;
    spec.vocab_size = 35'000;
    spec.num_topics = 5;
    spec.seed = 90909;
    auto built = BuildSyntheticEngine(spec);
    QBS_CHECK(built.ok());
    return built->release();
  }();
  return engine;
}

class SamplerSweep
    : public ::testing::TestWithParam<std::tuple<size_t, SelectionStrategy>> {
};

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, SamplerSweep,
    ::testing::Combine(
        ::testing::Values(1, 2, 4, 8),
        ::testing::Values(SelectionStrategy::kRandomLearned,
                          SelectionStrategy::kDfLearned,
                          SelectionStrategy::kCtfLearned,
                          SelectionStrategy::kAvgTfLearned)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, SelectionStrategy>>&
           sweep_info) {
      return "N" + std::to_string(std::get<0>(sweep_info.param)) + "_" +
             SelectionStrategyName(std::get<1>(sweep_info.param));
    });

TEST_P(SamplerSweep, CoreInvariantsHold) {
  auto [docs_per_query, strategy] = GetParam();
  SearchEngine* engine = SweepEngine();
  LanguageModel actual = engine->ActualLanguageModel();

  SamplerOptions opts;
  opts.docs_per_query = docs_per_query;
  opts.strategy = strategy;
  opts.stopping.max_documents = 90;
  opts.collect_documents = true;
  Rng rng(31 + docs_per_query);
  opts.initial_term = *RandomEligibleTerm(actual, opts.filter, rng);

  auto result = QueryBasedSampler(engine, opts).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // 1. The document budget is met exactly (the corpus is large enough).
  EXPECT_EQ(result->documents_examined, 90u);
  EXPECT_EQ(result->learned.num_docs(), 90u);
  EXPECT_EQ(result->sampled_documents.size(), 90u);

  // 2. Query accounting adds up.
  size_t new_docs = 0, hits = 0;
  for (const QueryRecord& q : result->queries) {
    EXPECT_LE(q.hits_returned, docs_per_query);
    EXPECT_LE(q.new_docs, q.hits_returned);
    new_docs += q.new_docs;
    hits += q.hits_returned;
  }
  EXPECT_EQ(new_docs, result->documents_examined);
  // Hits are new, duplicates, or (only in the final query, once the budget
  // trips mid-result-list) left unprocessed.
  EXPECT_GE(hits - new_docs, result->duplicate_hits);
  EXPECT_LE(hits - new_docs, result->duplicate_hits + docs_per_query - 1);
  EXPECT_EQ(result->queries.size(), result->queries_run);

  // 3. It takes at least ceil(docs / N) queries.
  EXPECT_GE(result->queries_run,
            (90 + docs_per_query - 1) / docs_per_query);

  // 4. No query term repeats, and all conform to the filter.
  std::set<std::string> terms;
  for (const QueryRecord& q : result->queries) {
    EXPECT_TRUE(terms.insert(q.term).second) << q.term;
    EXPECT_TRUE(opts.filter.IsEligible(q.term)) << q.term;
  }

  // 5. The raw and stemmed models describe the same documents.
  EXPECT_EQ(result->learned_stemmed.num_docs(), result->learned.num_docs());
  EXPECT_EQ(result->learned_stemmed.total_term_count(),
            result->learned.total_term_count());
  EXPECT_LE(result->learned_stemmed.vocabulary_size(),
            result->learned.vocabulary_size());

  // 6. Every learned term truly occurs in the database: the learned raw
  // vocabulary, stemmed, must be a subset of the actual vocabulary.
  LanguageModel stemmed_learned = result->learned.StemCollapsed();
  size_t misses = 0;
  stemmed_learned.ForEach([&](const std::string& term, const TermStats&) {
    // Stopwords are absent from the actual model by construction; skip
    // terms the database would have stopped.
    if (StopwordList::DefaultStemmed().Contains(term)) return;
    if (!actual.Contains(term)) ++misses;
  });
  EXPECT_EQ(misses, 0u);

  // 7. Learned df never exceeds the number of examined documents.
  result->learned.ForEach([&](const std::string&, const TermStats& s) {
    EXPECT_LE(s.df, 90u);
    EXPECT_GE(s.ctf, s.df);
  });
}

}  // namespace
}  // namespace qbs

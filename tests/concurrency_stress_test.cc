// Concurrency stress suite: hammers every shared-state component that PR 1
// introduced (ThreadPool, MetricRegistry, CostMeter, TraceRecorder,
// SamplingService::RefreshAll) with >= 8 threads. The assertions are
// deliberately coarse — counts conserved, invariants held, no deadlock —
// because the real checker is ThreadSanitizer: this binary builds in every
// configuration but is the gating workload of the `tsan` preset
// (scripts/check.sh runs it there with halt_on_error=1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "broker/model_registry.h"
#include "broker/selection_broker.h"
#include "corpus/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/cost_meter.h"
#include "search/text_database.h"
#include "selection/db_selection.h"
#include "service/sampling_service.h"
#include "util/thread_pool.h"

namespace qbs {
namespace {

constexpr size_t kThreads = 8;

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolStress, SubmitDuringShutdownNeverLosesOrLeaksTasks) {
  // Producers race Shutdown() on a live pool. Every Submit either
  // returns true (the task must then run before Shutdown returns) or
  // false (the task must never run). accepted == executed pins both
  // directions of that contract.
  ThreadPool pool(4);
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> executed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (pool.Submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            })) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Let the producers build up steam, then shut the pool down under
  // them while they are still submitting.
  while (accepted.load(std::memory_order_relaxed) < 2000) {
    std::this_thread::yield();
  }
  pool.Shutdown();
  const uint64_t executed_at_shutdown =
      executed.load(std::memory_order_relaxed);
  stop.store(true, std::memory_order_relaxed);
  for (auto& p : producers) p.join();
  EXPECT_EQ(accepted.load(), executed.load());
  // Shutdown returned only after draining what it had accepted; later
  // Submit calls were all rejected, so the count cannot grow after it.
  EXPECT_EQ(executed_at_shutdown, executed.load());
  EXPECT_GE(executed.load(), 2000u);
}

TEST(ThreadPoolStress, WaitRacingSubmit) {
  ThreadPool pool(4);
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> submitted{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads / 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (pool.Submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            })) {
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) pool.Wait();
    });
  }
  while (submitted.load(std::memory_order_relaxed) < 5000) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  pool.Wait();
  EXPECT_EQ(submitted.load(), executed.load());
}

TEST(ThreadPoolStress, ParallelForEachIndexExactlyOnce) {
  constexpr size_t kItems = 10'000;
  std::vector<std::atomic<uint32_t>> touched(kItems);
  ThreadPool::ParallelFor(kItems, kThreads,
                          [&](size_t i) { touched[i].fetch_add(1); });
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(touched[i].load(), 1u) << "index " << i;
  }
}

// --- MetricRegistry ------------------------------------------------------

TEST(MetricRegistryStress, RegisterIncrementExportConcurrently) {
  // Every thread interleaves registration (lock path), increments
  // (lock-free path), and full exports (reader path) against one local
  // registry. Counts must be conserved exactly.
  MetricRegistry registry;
  constexpr size_t kNamesPerThread = 16;
  constexpr uint64_t kIncrements = 4000;

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        // Names collide across threads on purpose: GetCounter must
        // return the same stable pointer to everyone.
        Counter* c = registry.GetCounter(
            "stress_counter_" + std::to_string(i % kNamesPerThread));
        c->Increment();
        Gauge* g = registry.GetGauge("stress_gauge");
        g->Set(static_cast<double>(i));
        Histogram* h = registry.GetHistogram(
            "stress_histogram", Histogram::ExponentialBounds(1.0, 2.0, 8));
        h->Observe(static_cast<double>(i % 300));
        if (i % 512 == 0) {
          std::ostringstream prom, json;
          registry.ExportPrometheus(prom);
          registry.ExportJson(json);
          EXPECT_FALSE(prom.str().empty());
          EXPECT_FALSE(json.str().empty());
        }
      }
      (void)t;
    });
  }
  for (auto& t : threads) t.join();

  uint64_t total = 0;
  for (size_t i = 0; i < kNamesPerThread; ++i) {
    total += registry.GetCounter("stress_counter_" + std::to_string(i))
                 ->value();
  }
  EXPECT_EQ(total, kThreads * kIncrements);
  EXPECT_EQ(registry.GetHistogram("stress_histogram",
                                  Histogram::ExponentialBounds(1.0, 2.0, 8))
                ->count(),
            kThreads * kIncrements);
}

TEST(MetricRegistryStress, HistogramExportCountMatchesInfBucket) {
  // Pins the export-vs-increment tearing fix: while observers hammer the
  // histogram, every scrape must satisfy the Prometheus invariant that
  // `_count` equals the cumulative +Inf bucket. Before the fix, _count
  // was read from a separate atomic and routinely disagreed.
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram(
      "tearing_histogram", Histogram::ExponentialBounds(1.0, 2.0, 6));

  std::atomic<bool> stop{false};
  std::vector<std::thread> observers;
  for (size_t t = 0; t < kThreads; ++t) {
    observers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h->Observe(static_cast<double>(i++ % 100));
      }
    });
  }

  auto extract = [](const std::string& text, const std::string& key) {
    size_t pos = text.find(key);
    EXPECT_NE(pos, std::string::npos) << key;
    pos += key.size();
    return std::stoull(text.substr(pos));
  };
  for (int scrape = 0; scrape < 200; ++scrape) {
    std::ostringstream out;
    registry.ExportPrometheus(out);
    const std::string text = out.str();
    uint64_t inf_bucket =
        extract(text, "tearing_histogram_bucket{le=\"+Inf\"} ");
    uint64_t count = extract(text, "tearing_histogram_count ");
    ASSERT_EQ(count, inf_bucket) << "scrape " << scrape;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : observers) t.join();
}

// --- CostMeter -----------------------------------------------------------

// Minimal thread-safe database: answers every query with one hit and
// serves a fixed document; fails on a marker query/handle so the error
// counter is exercised too.
class EchoDatabase : public TextDatabase {
 public:
  std::string name() const override { return "echo"; }
  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t) override {
    if (query == "fail") return Status::IOError("injected");
    return std::vector<SearchHit>{{"doc", 1.0}};
  }
  Result<std::string> FetchDocument(std::string_view handle) override {
    if (handle == "missing") return Status::NotFound("injected");
    return std::string("0123456789");
  }
};

TEST(CostMeterStress, ConcurrentTrafficConservesCounts) {
  EchoDatabase inner;
  MetricRegistry registry;
  CostMeter meter(&inner, &registry);

  constexpr uint64_t kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        switch (i % 4) {
          case 0: (void)meter.RunQuery("ok", 10); break;
          case 1: (void)meter.RunQuery("fail", 10); break;
          case 2: (void)meter.FetchDocument("doc"); break;
          case 3: (void)meter.FetchDocument("missing"); break;
        }
        if (i % 1024 == 0) (void)meter.costs();  // concurrent snapshots
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t per_kind = kThreads * kOpsPerThread / 4;
  InteractionCosts c = meter.costs();
  EXPECT_EQ(c.queries, 2 * per_kind);  // "ok" and "fail" both count
  EXPECT_EQ(c.hits_returned, per_kind);
  EXPECT_EQ(c.documents_fetched, per_kind);
  EXPECT_EQ(c.document_bytes, per_kind * 10);
  EXPECT_EQ(c.errors, 2 * per_kind);  // failed query + missing fetch
  EXPECT_EQ(c.query_bytes, per_kind * 2 + per_kind * 4);  // "ok" + "fail"
}

// --- TraceRecorder -------------------------------------------------------

TEST(TraceRecorderStress, RingWraparoundUnderConcurrentRecordAndExport) {
  TraceRecorder recorder(/*capacity=*/64);
  recorder.set_enabled(true);

  constexpr uint64_t kSpansPerThread = 3000;
  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream out;
      recorder.DumpChromeTrace(out);
      std::vector<TraceEvent> events = recorder.Events();
      EXPECT_LE(events.size(), 64u);
      for (const TraceEvent& e : events) {
        EXPECT_FALSE(e.name.empty());
        EXPECT_GT(e.tid, 0u);
      }
    }
  });
  std::vector<std::thread> recorders;
  for (size_t t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (uint64_t i = 0; i < kSpansPerThread; ++i) {
        recorder.Record("span-" + std::to_string(t), i, 1);
      }
    });
  }
  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  EXPECT_EQ(recorder.total_recorded(), kThreads * kSpansPerThread);
  EXPECT_EQ(recorder.size(), 64u);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceRecorderStress, SpansRacingEnableDisable) {
  // TraceSpan reads the enabled flag twice (construct/destruct); flipping
  // it concurrently must only ever drop spans, never corrupt the ring.
  TraceRecorder& global = TraceRecorder::Global();
  global.Clear();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      global.set_enabled(on = !on);
    }
  });
  std::vector<std::thread> spanners;
  for (size_t t = 0; t < kThreads; ++t) {
    spanners.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) { QBS_TRACE_SPAN("stress.race"); }
    });
  }
  for (auto& t : spanners) t.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  global.set_enabled(false);
  for (const TraceEvent& e : global.Events()) {
    EXPECT_EQ(e.name, "stress.race");
  }
  global.Clear();
}

// --- SamplingService -----------------------------------------------------

TEST(ServiceStress, RefreshAllOverSharedFederation) {
  // A federation twice as wide as the worker count, refreshed on >= 8
  // threads: per-database sampling runs concurrently against the shared
  // metric registry, trace recorder, and model-state vector.
  constexpr size_t kNumDbs = 2 * kThreads;
  std::vector<std::unique_ptr<SearchEngine>> engines;
  std::vector<std::string> seed_terms;
  for (size_t i = 0; i < kNumDbs; ++i) {
    SyntheticCorpusSpec spec;
    spec.name = "stress-" + std::to_string(i);
    spec.num_docs = 120;
    spec.vocab_size = 8000;
    spec.num_topics = 2;
    spec.seed = 4400 + 13 * i;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    LanguageModel actual = (*engine)->ActualLanguageModel();
    for (const auto& [term, score] :
         actual.RankedTerms(TermMetric::kCtf, 2)) {
      seed_terms.push_back(term);
    }
    engines.push_back(std::move(*engine));
  }

  ServiceOptions opts;
  opts.sampler.stopping.max_documents = 30;
  opts.seed_terms = seed_terms;
  opts.num_threads = kThreads;
  SamplingService service(opts);
  for (auto& engine : engines) {
    ASSERT_TRUE(service.AddDatabase(engine.get()).ok());
  }

  TraceRecorder::Global().set_enabled(true);
  Status status = service.RefreshAll();
  TraceRecorder::Global().set_enabled(false);
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (const DatabaseState& s : service.state()) {
    EXPECT_TRUE(s.has_model) << s.name;
    EXPECT_GT(s.learned.vocabulary_size(), 0u) << s.name;
  }

  // Read-only selection from many threads after refresh completes.
  std::vector<std::thread> selectors;
  std::atomic<int> ok_selects{0};
  for (size_t t = 0; t < kThreads; ++t) {
    selectors.emplace_back([&, t] {
      auto ranking = service.Select(seed_terms[t % seed_terms.size()]);
      if (ranking.ok() && ranking->size() == kNumDbs) {
        ok_selects.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : selectors) t.join();
  EXPECT_EQ(ok_selects.load(), static_cast<int>(kThreads));
}

// --- Selection broker ----------------------------------------------------

TEST(BrokerStress, SelectsRaceSnapshotPublication) {
  // The tentpole race: >= 8 threads hammering SelectionBroker::Select
  // (lock-free snapshot reads + the sharded result cache) while a
  // publisher thread swaps in new snapshots the whole time. TSan is the
  // real checker; the inline assertions pin the snapshot contract — a
  // reader never sees a half-published generation, and the epochs one
  // thread observes never move backwards.
  auto make_collection = [](size_t generation) {
    DatabaseCollection dbs;
    for (size_t i = 0; i < 3; ++i) {
      LanguageModel model;
      model.AddTerm("alpha", 10 + generation, 30 + generation);
      model.AddTerm("beta" + std::to_string(i), 5 + i, 9 + i);
      model.set_num_docs(50 + 10 * i);
      dbs.Add("db-" + std::to_string(i), std::move(model));
    }
    return dbs;
  };

  ModelRegistry registry;
  registry.Publish(make_collection(0));  // readers never see epoch 0
  SelectionBroker broker(&registry);

  constexpr int kPublishes = 200;
  constexpr int kSelectsPerThread = 400;
  std::atomic<bool> publisher_done{false};
  std::thread publisher([&] {
    for (int g = 1; g <= kPublishes; ++g) {
      registry.Publish(make_collection(static_cast<size_t>(g)));
    }
    publisher_done.store(true, std::memory_order_relaxed);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> ok_selects{0};
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      const std::string ranker =
          KnownRankerNames()[t % KnownRankerNames().size()];
      uint64_t last_epoch = 0;
      for (int i = 0; i < kSelectsPerThread; ++i) {
        auto result = broker.Select("alpha beta1", ranker);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        // Complete-or-absent: every published generation has all 3
        // databases, so a partial view would show up as a short ranking.
        ASSERT_EQ(result->scores.size(), 3u);
        ASSERT_GE(result->epoch, last_epoch);
        last_epoch = result->epoch;
        ok_selects.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : readers) t.join();
  publisher.join();
  ASSERT_TRUE(publisher_done.load());
  EXPECT_EQ(ok_selects.load(), kThreads * uint64_t{kSelectsPerThread});
  EXPECT_EQ(registry.Snapshot()->epoch(), 1u + kPublishes);
}

}  // namespace
}  // namespace qbs

// Randomized property tests: invariants that must hold for arbitrary
// inputs, checked over many seeded random instances via TEST_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "index/postings.h"
#include "index/varint.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace qbs {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- Varint: encode/decode is the identity for any value sequence. ---
TEST_P(SeededProperty, VarintRoundTripsRandomSequences) {
  Rng rng(GetParam());
  std::vector<uint32_t> values32;
  std::vector<uint64_t> values64;
  std::vector<uint8_t> buf;
  for (int i = 0; i < 500; ++i) {
    // Mix magnitudes so all byte-lengths are exercised.
    int bits = 1 + static_cast<int>(rng.UniformBelow(32));
    uint32_t v32 = static_cast<uint32_t>(rng.Next64() &
                                         ((bits == 32) ? 0xFFFFFFFFull
                                                       : ((1ull << bits) - 1)));
    values32.push_back(v32);
    PutVarint32(buf, v32);
    int bits64 = 1 + static_cast<int>(rng.UniformBelow(64));
    uint64_t v64 =
        rng.Next64() & ((bits64 == 64) ? ~0ull : ((1ull << bits64) - 1));
    values64.push_back(v64);
    PutVarint64(buf, v64);
  }
  size_t pos = 0;
  for (int i = 0; i < 500; ++i) {
    uint32_t out32 = 0;
    uint64_t out64 = 0;
    ASSERT_TRUE(GetVarint32(buf, &pos, &out32));
    EXPECT_EQ(out32, values32[i]);
    ASSERT_TRUE(GetVarint64(buf, &pos, &out64));
    EXPECT_EQ(out64, values64[i]);
  }
  EXPECT_EQ(pos, buf.size());
}

// --- Postings: the compressed list reproduces any reference sequence and
// its aggregate statistics. ---
TEST_P(SeededProperty, PostingListMatchesReference) {
  Rng rng(GetParam());
  PostingList plist;
  std::vector<Posting> reference;
  DocId doc = 0;
  uint64_t ctf = 0;
  int n = 100 + static_cast<int>(rng.UniformBelow(900));
  for (int i = 0; i < n; ++i) {
    doc += 1 + static_cast<DocId>(rng.UniformBelow(1000));
    uint32_t tf = 1 + static_cast<uint32_t>(rng.UniformBelow(50));
    plist.Append(doc, tf);
    reference.push_back({doc, tf});
    ctf += tf;
  }
  EXPECT_EQ(plist.doc_frequency(), reference.size());
  EXPECT_EQ(plist.collection_frequency(), ctf);
  EXPECT_EQ(plist.Decode(), reference);
}

// --- Metrics invariants ---

LanguageModel RandomModel(Rng& rng, size_t vocab, uint64_t max_df) {
  LanguageModel lm;
  for (size_t i = 0; i < vocab; ++i) {
    if (rng.Bernoulli(0.3)) continue;  // random vocabulary overlap
    uint64_t df = 1 + rng.UniformBelow(max_df);
    uint64_t ctf = df + rng.UniformBelow(df * 3 + 1);
    lm.AddTerm("term" + std::to_string(i), df, ctf);
  }
  return lm;
}

TEST_P(SeededProperty, MetricsStayInRange) {
  Rng rng(GetParam() * 7919);
  LanguageModel a = RandomModel(rng, 300, 50);
  LanguageModel b = RandomModel(rng, 300, 50);
  double pct = PercentageLearned(a, b);
  EXPECT_GE(pct, 0.0);
  EXPECT_LE(pct, 1.0);
  double ctf = CtfRatio(a, b);
  EXPECT_GE(ctf, 0.0);
  EXPECT_LE(ctf, 1.0);
  double rho = SpearmanRankCorrelation(a, b);
  EXPECT_GE(rho, -1.0 - 1e-9);
  EXPECT_LE(rho, 1.0 + 1e-9);
  double rd = RDiff(a, b);
  EXPECT_GE(rd, 0.0);
  EXPECT_LE(rd, 1.0);
}

TEST_P(SeededProperty, SpearmanIsSymmetric) {
  Rng rng(GetParam() * 104729);
  LanguageModel a = RandomModel(rng, 200, 40);
  LanguageModel b = RandomModel(rng, 200, 40);
  EXPECT_NEAR(SpearmanRankCorrelation(a, b), SpearmanRankCorrelation(b, a),
              1e-12);
  EXPECT_NEAR(RDiff(a, b), RDiff(b, a), 1e-12);
}

TEST_P(SeededProperty, SelfComparisonIsPerfect) {
  Rng rng(GetParam() * 31);
  LanguageModel a = RandomModel(rng, 200, 40);
  if (a.vocabulary_size() < 2) return;
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation(a, a), 1.0);
  EXPECT_DOUBLE_EQ(RDiff(a, a), 0.0);
  EXPECT_DOUBLE_EQ(CtfRatio(a, a), 1.0);
  EXPECT_DOUBLE_EQ(PercentageLearned(a, a), 1.0);
}

// On tie-free data the simple formula and the tie-corrected Pearson
// computation must agree (they only diverge under ties).
TEST_P(SeededProperty, SimpleAndTieCorrectedAgreeWithoutTies) {
  Rng rng(GetParam() * 613);
  LanguageModel a, b;
  std::vector<uint64_t> dfs_a, dfs_b;
  for (uint64_t v = 1; v <= 120; ++v) {
    dfs_a.push_back(v);
    dfs_b.push_back(v);
  }
  rng.Shuffle(dfs_a);
  rng.Shuffle(dfs_b);
  for (size_t i = 0; i < dfs_a.size(); ++i) {
    a.AddTerm("t" + std::to_string(i), dfs_a[i], dfs_a[i]);
    b.AddTerm("t" + std::to_string(i), dfs_b[i], dfs_b[i]);
  }
  SpearmanOptions simple;
  SpearmanOptions corrected;
  corrected.tie_corrected = true;
  EXPECT_NEAR(SpearmanRankCorrelation(a, b, simple),
              SpearmanRankCorrelation(a, b, corrected), 1e-9);
}

// Growing the learned model can never reduce coverage metrics.
TEST_P(SeededProperty, CoverageIsMonotoneInLearnedVocabulary) {
  Rng rng(GetParam() * 271);
  LanguageModel actual = RandomModel(rng, 400, 60);
  LanguageModel small, large;
  actual.ForEach([&](const std::string& term, const TermStats& s) {
    bool in_small = rng.Bernoulli(0.3);
    if (in_small) small.AddTerm(term, s.df, s.ctf);
    if (in_small || rng.Bernoulli(0.4)) large.AddTerm(term, s.df, s.ctf);
  });
  EXPECT_LE(CtfRatio(small, actual), CtfRatio(large, actual) + 1e-12);
  EXPECT_LE(PercentageLearned(small, actual),
            PercentageLearned(large, actual) + 1e-12);
}

// --- Tokenizer: output tokens are within configured length bounds and
// consist only of word characters; tokenization is deterministic. ---
TEST_P(SeededProperty, TokenizerOutputsWellFormedTokens) {
  Rng rng(GetParam() * 37);
  std::string text;
  const char* alphabet = "abcXYZ019 .,;!?'\"\n\t-_/";
  for (int i = 0; i < 2000; ++i) {
    text.push_back(alphabet[rng.UniformBelow(22)]);
  }
  TokenizerOptions opts;
  opts.min_token_length = 2;
  opts.max_token_length = 10;
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize(text);
  for (const auto& t : tokens) {
    EXPECT_GE(t.size(), 2u);
    EXPECT_LE(t.size(), 10u);
    for (char c : t) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9'))
          << t;
    }
  }
  EXPECT_EQ(tokens, tok.Tokenize(text));
}

// --- Porter stemmer: never crashes, never grows a word, output is
// lowercase ASCII for lowercase ASCII input. ---
TEST_P(SeededProperty, StemmerIsTotalAndNonExpanding) {
  Rng rng(GetParam() * 7);
  for (int i = 0; i < 2000; ++i) {
    size_t len = 1 + rng.UniformBelow(18);
    std::string word;
    for (size_t j = 0; j < len; ++j) {
      word.push_back(static_cast<char>('a' + rng.UniformBelow(26)));
    }
    std::string stem = PorterStemmer::Stem(word);
    EXPECT_LE(stem.size(), word.size()) << word;
    EXPECT_GE(stem.size(), 1u) << word;
    for (char c : stem) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word << " -> " << stem;
    }
  }
}

// --- AverageRanks: ranks are a permutation-with-ties of 1..n whose sum is
// n(n+1)/2 regardless of tie structure. ---
TEST_P(SeededProperty, AverageRanksSumIsInvariant) {
  Rng rng(GetParam() * 11);
  std::vector<std::pair<std::string, double>> scored;
  size_t n = 50 + rng.UniformBelow(200);
  for (size_t i = 0; i < n; ++i) {
    // Few distinct scores -> many ties.
    scored.emplace_back("t" + std::to_string(i),
                        static_cast<double>(rng.UniformBelow(10)));
  }
  auto ranks = AverageRanks(scored);
  ASSERT_EQ(ranks.size(), n);
  double sum = 0.0;
  for (const auto& [term, rank] : ranks) {
    EXPECT_GE(rank, 1.0);
    EXPECT_LE(rank, static_cast<double>(n));
    sum += rank;
  }
  EXPECT_NEAR(sum, n * (n + 1) / 2.0, 1e-6);
}

}  // namespace
}  // namespace qbs

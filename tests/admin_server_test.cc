// Tests for the embedded admin/debug HTTP endpoint: raw HTTP GETs over
// a loopback socket against each route, plus protocol edge cases (bad
// method, unknown path).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "net/socket.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {
namespace {

constexpr uint64_t kDialTimeoutUs = 2'000'000;

// Sends one raw HTTP request and returns the full response (headers and
// body) once the server closes the connection.
std::string RawRequest(uint16_t port, const std::string& request) {
  auto stream = SocketStream::Dial("127.0.0.1", port, kDialTimeoutUs);
  if (!stream.ok()) return "dial failed: " + stream.status().ToString();
  (*stream)->SetDeadlineMicros(MonotonicMicros() + kDialTimeoutUs);
  Status written = (*stream)->WriteAll(
      reinterpret_cast<const uint8_t*>(request.data()), request.size());
  if (!written.ok()) return "write failed: " + written.ToString();
  // The server answers one request then closes; read until it does.
  std::string response;
  uint8_t byte = 0;
  while ((*stream)->ReadFull(&byte, 1).ok()) {
    response.push_back(static_cast<char>(byte));
  }
  return response;
}

std::string Get(uint16_t port, const std::string& target) {
  return RawRequest(port, "GET " + target +
                              " HTTP/1.1\r\nHost: t\r\n"
                              "Connection: close\r\n\r\n");
}

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().set_enabled(true);
  }
  void TearDown() override {
    server_.reset();
    TraceRecorder::Global().set_enabled(false);
    TraceRecorder::Global().Clear();
  }

  AdminServer& StartServer(AdminServerOptions options = {}) {
    server_ = std::make_unique<AdminServer>(std::move(options));
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_NE(server_->port(), 0);  // ephemeral bind reported back
    return *server_;
  }

  std::unique_ptr<AdminServer> server_;
};

TEST_F(AdminServerTest, IndexListsTheEndpoints) {
  AdminServer& server = StartServer();
  std::string response = Get(server.port(), "/");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("/metrics"), std::string::npos);
  EXPECT_NE(response.find("/statusz"), std::string::npos);
  EXPECT_NE(response.find("/tracez"), std::string::npos);
}

TEST_F(AdminServerTest, MetricsServesPrometheusExposition) {
  MetricRegistry::Default()
      .GetCounter("qbs_admin_requests_total")
      ->Increment();
  AdminServer& server = StartServer();
  std::string response = Get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);
  EXPECT_NE(response.find("qbs_admin_requests_total"), std::string::npos);
}

TEST_F(AdminServerTest, StatuszShowsProcessInfoAndRegisteredProviders) {
  server_ = std::make_unique<AdminServer>(AdminServerOptions{});
  server_->AddStatus("flavor", [] { return std::string("vanilla"); });
  ASSERT_TRUE(server_->Start().ok());
  std::string response = Get(server_->port(), "/statusz");
  EXPECT_NE(response.find("uptime_us: "), std::string::npos) << response;
  EXPECT_NE(response.find("pid: "), std::string::npos);
  EXPECT_NE(response.find("trace_enabled: true"), std::string::npos);
  EXPECT_NE(response.find("flavor: vanilla"), std::string::npos);
}

TEST_F(AdminServerTest, TracezListsSlowSpansAndHonorsThreshold) {
  TraceRecorder::Global().Record("slow.op", 10, 50'000);
  TraceRecorder::Global().Record("fast.op", 20, 5);
  AdminServer& server = StartServer();
  // Default threshold (1000us) keeps only the slow span.
  std::string response = Get(server.port(), "/tracez");
  EXPECT_NE(response.find("slow.op"), std::string::npos) << response;
  EXPECT_EQ(response.find("fast.op"), std::string::npos);
  // An explicit min_us=0 shows everything.
  response = Get(server.port(), "/tracez?min_us=0");
  EXPECT_NE(response.find("slow.op"), std::string::npos);
  EXPECT_NE(response.find("fast.op"), std::string::npos);
  // An unparseable threshold falls back to the default.
  response = Get(server.port(), "/tracez?min_us=banana");
  EXPECT_EQ(response.find("fast.op"), std::string::npos);
}

TEST_F(AdminServerTest, TraceJsonIsLoadableChromeTrace) {
  TraceRecorder::Global().Record("traced.op", 1, 2'000);
  AdminServer& server = StartServer();
  std::string response = Get(server.port(), "/trace.json");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"traceEvents\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"traced.op\""), std::string::npos);
}

TEST_F(AdminServerTest, UnknownPathIs404) {
  AdminServer& server = StartServer();
  std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos)
      << response;
}

TEST_F(AdminServerTest, NonGetMethodIs405WithAllowHeader) {
  AdminServer& server = StartServer();
  std::string response = RawRequest(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos)
      << response;
  // RFC 9110 requires the 405 to advertise what *is* allowed.
  EXPECT_NE(response.find("Allow: GET"), std::string::npos) << response;
}

// --- malformed-HTTP hardening: the parser must answer, not crash or
// --- silently drop, when fed protocol garbage.

TEST_F(AdminServerTest, OverlongRequestLineIs414) {
  AdminServer& server = StartServer();
  // A 3000-byte URI blows the 2048-byte request-line cap before the
  // first CRLF ever arrives.
  std::string response = RawRequest(
      server.port(),
      "GET /" + std::string(3000, 'a') + " HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 414 URI Too Long"), std::string::npos)
      << response.substr(0, 200);
}

TEST_F(AdminServerTest, OversizedHeaderSectionIs431) {
  AdminServer& server = StartServer();
  // Request line is fine; the headers never terminate within the
  // 8192-byte connection cap.
  std::string response = RawRequest(
      server.port(),
      "GET / HTTP/1.1\r\nX-Junk: " + std::string(9000, 'j') + "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 431 Request Header Fields Too Large"),
            std::string::npos)
      << response.substr(0, 200);
}

TEST_F(AdminServerTest, MissingHttpVersionIs400) {
  AdminServer& server = StartServer();
  std::string response =
      RawRequest(server.port(), "GET /metrics\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
  EXPECT_NE(response.find("missing HTTP version"), std::string::npos)
      << response;
}

TEST_F(AdminServerTest, BogusHttpVersionIs400) {
  AdminServer& server = StartServer();
  std::string response =
      RawRequest(server.port(), "GET /metrics FTP/9.9\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
}

TEST_F(AdminServerTest, EmptyOrLeadingSpaceRequestLineIs400) {
  AdminServer& server = StartServer();
  std::string response = RawRequest(server.port(), "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
  response = RawRequest(server.port(), " GET / HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
}

TEST_F(AdminServerTest, PipelinedGarbageGetsOneResponseThenClose) {
  AdminServer& server = StartServer();
  // Everything after the first request's terminator — a second request,
  // binary junk — must be ignored: one response, then the server closes.
  std::string response = RawRequest(
      server.port(),
      "GET / HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"
      "\x01\x02garbage\xff");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  // Exactly one status line: the pipelined second request was not served.
  size_t first = response.find("HTTP/1.1 ");
  EXPECT_EQ(response.find("HTTP/1.1 ", first + 1), std::string::npos)
      << response;
  // The body served is the index, not /metrics.
  EXPECT_NE(response.find("qbs admin endpoints"), std::string::npos);
}

TEST_F(AdminServerTest, RequestCounterCountsServedRequests) {
  Counter* requests =
      MetricRegistry::Default().GetCounter("qbs_admin_requests_total");
  AdminServer& server = StartServer();
  uint64_t before = requests->value();
  Get(server.port(), "/");
  Get(server.port(), "/metrics");
  EXPECT_EQ(requests->value() - before, 2u);
}

TEST_F(AdminServerTest, ServesSequentialConnectionsAndStopsCleanly) {
  AdminServer& server = StartServer();
  for (int i = 0; i < 5; ++i) {
    std::string response = Get(server.port(), "/");
    ASSERT_NE(response.find("200 OK"), std::string::npos) << response;
  }
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST_F(AdminServerTest, SecondStartIsRejected) {
  AdminServer& server = StartServer();
  Status again = server.Start();
  EXPECT_TRUE(again.IsFailedPrecondition()) << again.ToString();
}

}  // namespace
}  // namespace qbs

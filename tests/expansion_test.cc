// Tests for co-occurrence statistics and query expansion (paper §8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "expansion/cooccurrence.h"

namespace qbs {
namespace {

// A small "sample union" with a clear co-occurrence structure: politics
// documents pair "president" with "senate"; fruit documents do not.
CooccurrenceModel PoliticsAndFruit() {
  CooccurrenceModel model;
  model.AddDocument("President speech senate vote president");
  model.AddDocument("Senate president debate policy");
  model.AddDocument("President senate election campaign");
  model.AddDocument("Apple orchard harvest fruit");
  model.AddDocument("Apple pie fruit dessert");
  model.AddDocument("Banana fruit smoothie");
  return model;
}

TEST(CooccurrenceModelTest, DfCountsDocumentsNotOccurrences) {
  CooccurrenceModel model = PoliticsAndFruit();
  EXPECT_EQ(model.num_docs(), 6u);
  EXPECT_EQ(model.df("presid"), 3u);  // stemmed term space
  EXPECT_EQ(model.df("appl"), 2u);
  EXPECT_EQ(model.df("fruit"), 3u);
  EXPECT_EQ(model.df("absent"), 0u);
}

TEST(CooccurrenceModelTest, CoDfIntersectsDocumentSets) {
  CooccurrenceModel model = PoliticsAndFruit();
  EXPECT_EQ(model.CoDf("presid", "senat"), 3u);
  EXPECT_EQ(model.CoDf("presid", "fruit"), 0u);
  EXPECT_EQ(model.CoDf("appl", "fruit"), 2u);
  EXPECT_EQ(model.CoDf("absent", "fruit"), 0u);
  EXPECT_EQ(model.CoDf("presid", "presid"), 3u);
}

TEST(CooccurrenceModelTest, EmimPositiveForAssociatedTerms) {
  CooccurrenceModel model = PoliticsAndFruit();
  EXPECT_GT(model.Emim("presid", "senat"), 0.0);
  EXPECT_DOUBLE_EQ(model.Emim("presid", "fruit"), 0.0);  // never co-occur
  EXPECT_DOUBLE_EQ(model.Emim("absent", "senat"), 0.0);
}

TEST(CooccurrenceModelTest, EmimHandComputed) {
  CooccurrenceModel model = PoliticsAndFruit();
  // p(apple,fruit) = 2/6; p(apple) = 2/6; p(fruit) = 3/6.
  double p_ab = 2.0 / 6.0, p_a = 2.0 / 6.0, p_b = 3.0 / 6.0;
  EXPECT_NEAR(model.Emim("appl", "fruit"),
              p_ab * std::log(p_ab / (p_a * p_b)), 1e-12);
}

TEST(CooccurrenceModelTest, TopAssociatesRankedByEmim) {
  CooccurrenceModel model = PoliticsAndFruit();
  auto assoc = model.TopAssociates("presid", 5);
  ASSERT_FALSE(assoc.empty());
  EXPECT_EQ(assoc[0].first, "senat");  // co-occurs in all 3 politics docs
  for (const auto& [term, emim] : assoc) {
    EXPECT_NE(term, "presid");  // never suggests the term itself
    EXPECT_GT(emim, 0.0);
  }
}

TEST(CooccurrenceModelTest, MinDfSuppressesRarePartners) {
  CooccurrenceModel model = PoliticsAndFruit();
  auto loose = model.TopAssociates("presid", 20, 1);
  auto strict = model.TopAssociates("presid", 20, 3);
  EXPECT_GT(loose.size(), strict.size());
  for (const auto& [term, emim] : strict) {
    EXPECT_GE(model.df(term), 3u) << term;
  }
}

TEST(CooccurrenceModelTest, UnknownTermHasNoAssociates) {
  CooccurrenceModel model = PoliticsAndFruit();
  EXPECT_TRUE(model.TopAssociates("absent", 5).empty());
}

TEST(CooccurrenceModelTest, StopwordsExcludedByAnalyzer) {
  CooccurrenceModel model;
  model.AddDocument("the president and the senate");
  EXPECT_EQ(model.df("the"), 0u);
  EXPECT_EQ(model.df("presid"), 1u);
}

TEST(QueryExpanderTest, ExpandsWithAssociates) {
  CooccurrenceModel model = PoliticsAndFruit();
  QueryExpander expander(&model);
  auto expanded = expander.Expand("president", 2);
  ASSERT_GE(expanded.size(), 2u);
  EXPECT_EQ(expanded[0], "presid");  // original first
  EXPECT_NE(std::find(expanded.begin(), expanded.end(), "senat"),
            expanded.end());
}

TEST(QueryExpanderTest, ExpansionTermsExcludeQueryTerms) {
  CooccurrenceModel model = PoliticsAndFruit();
  QueryExpander expander(&model);
  auto terms = expander.ExpansionTerms({"presid", "senat"}, 5);
  for (const auto& [term, score] : terms) {
    EXPECT_NE(term, "presid");
    EXPECT_NE(term, "senat");
  }
}

TEST(QueryExpanderTest, MultiTermQuerySumsAssociations) {
  CooccurrenceModel model = PoliticsAndFruit();
  QueryExpander expander(&model);
  auto terms = expander.ExpansionTerms({"appl", "banana"}, 3);
  ASSERT_FALSE(terms.empty());
  EXPECT_EQ(terms[0].first, "fruit");  // associated with both query terms
}

TEST(QueryExpanderTest, UnknownQueryYieldsNoExpansion) {
  CooccurrenceModel model = PoliticsAndFruit();
  QueryExpander expander(&model);
  EXPECT_TRUE(expander.ExpansionTerms({"qwertyzzz"}, 5).empty());
}

TEST(QueryExpanderTest, EmptyModelIsSafe) {
  CooccurrenceModel model;
  QueryExpander expander(&model);
  EXPECT_TRUE(expander.ExpansionTerms({"spaceship"}, 5).empty());
  auto expanded = expander.Expand("spaceship", 5);
  ASSERT_EQ(expanded.size(), 1u);  // just the analyzed original
  EXPECT_EQ(expanded[0], "spaceship");
}

}  // namespace
}  // namespace qbs

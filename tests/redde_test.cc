// Tests for ReDDE database selection over sampled documents.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "selection/redde.h"

namespace qbs {
namespace {

TEST(ReddeRankerTest, CentralIndexCountsDocuments) {
  std::vector<ReddeSample> samples = {
      {"a", {"one doc", "two doc"}, 100.0},
      {"b", {"three doc"}, 50.0},
  };
  ReddeRanker ranker(samples);
  EXPECT_EQ(ranker.central_docs(), 3u);
  EXPECT_EQ(ranker.name(), "redde");
}

TEST(ReddeRankerTest, VotesAreSizeScaledHandComputed) {
  // db A: 2 sampled docs standing in for 100 -> each vote worth 50.
  // db B: 4 sampled docs standing in for 100 -> each vote worth 25.
  // One matching doc each: A scores 50, B scores 25.
  std::vector<ReddeSample> samples = {
      {"A", {"needle in text", "other content"}, 100.0},
      {"B", {"needle in text", "pad one", "pad two", "pad three"}, 100.0},
  };
  ReddeRanker ranker(samples);
  auto ranking = ranker.Rank({"needl"});  // stemmed term space
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].db_name, "A");
  EXPECT_DOUBLE_EQ(ranking[0].score, 50.0);
  EXPECT_DOUBLE_EQ(ranking[1].score, 25.0);
}

TEST(ReddeRankerTest, LargerEstimatedDatabaseWinsAtEqualDensity) {
  // Same sample composition; only the size estimates differ. The bigger
  // database is expected to hold proportionally more matching documents.
  std::vector<std::string> docs = {"topic words here", "unrelated text"};
  std::vector<ReddeSample> samples = {
      {"small", docs, 1'000.0},
      {"large", docs, 50'000.0},
  };
  ReddeRanker ranker(samples);
  auto ranking = ranker.Rank({"topic"});
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].db_name, "large");
  EXPECT_GT(ranking[0].score, ranking[1].score);
}

TEST(ReddeRankerTest, TopicalDatabaseBeatsNonTopical) {
  std::vector<ReddeSample> samples = {
      {"cooking",
       {"recipe flour oven baking", "saute butter recipe", "oven roast"},
       5'000.0},
      {"law",
       {"court appeal ruling", "statute verdict", "plaintiff motion"},
       5'000.0},
  };
  ReddeRanker ranker(samples);
  EXPECT_EQ(ranker.Rank({"recip"})[0].db_name, "cooking");
  EXPECT_EQ(ranker.Rank({"court"})[0].db_name, "law");
}

TEST(ReddeRankerTest, NoMatchesYieldsZeroScoresDeterministically) {
  std::vector<ReddeSample> samples = {
      {"b-db", {"alpha"}, 10.0},
      {"a-db", {"beta"}, 10.0},
  };
  ReddeRanker ranker(samples);
  auto ranking = ranker.Rank({"nonexistent"});
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_DOUBLE_EQ(ranking[0].score, 0.0);
  EXPECT_EQ(ranking[0].db_name, "a-db");  // alphabetical among ties
}

TEST(ReddeRankerTest, TopNLimitsVoters) {
  // 10 matching docs in db A (weight 1 each), 1 in db B (weight 100).
  // With top_n = 2, at most 2 documents vote overall.
  std::vector<ReddeSample> a_sample = {};
  ReddeSample a{"A", {}, 10.0};
  for (int i = 0; i < 10; ++i) a.documents.push_back("needle text " + std::to_string(i));
  ReddeSample b{"B", {"needle text strong"}, 100.0};
  ReddeOptions opts;
  opts.top_n = 2;
  ReddeRanker ranker({a, b}, opts);
  auto ranking = ranker.Rank({"needl"});
  double total = ranking[0].score + ranking[1].score;
  // Two voters max: possible totals are 2*1, 1+100, or ... but never 10.
  EXPECT_LE(total, 101.0);
  EXPECT_GT(total, 0.0);
}

TEST(ReddeRankerTest, EmptySampleDatabaseScoresZero) {
  std::vector<ReddeSample> samples = {
      {"present", {"needle doc"}, 10.0},
      {"empty", {}, 10.0},
  };
  ReddeRanker ranker(samples);
  auto ranking = ranker.Rank({"needl"});
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].db_name, "present");
  EXPECT_DOUBLE_EQ(ranking[1].score, 0.0);
}

}  // namespace
}  // namespace qbs

// Robustness tests: sampling over a lossy transport, and databases whose
// server is hard down. The network layer must degrade into retries and
// clean per-database errors — never hangs, crashes, or corrupt models.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/sampling_service.h"

namespace qbs {
namespace {

class NetFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "faultnetdb";
    spec.num_docs = 500;
    spec.vocab_size = 30'000;
    spec.num_topics = 3;
    spec.seed = 777;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();

    server_ = new DbServer(engine_, DbServerOptions{});
    ASSERT_TRUE(server_->Start().ok());

    seed_terms_ = new std::vector<std::string>();
    LanguageModel actual = engine_->ActualLanguageModel();
    for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 3)) {
      seed_terms_->push_back(term);
    }
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    server_ = nullptr;
    delete engine_;
    engine_ = nullptr;
    delete seed_terms_;
    seed_terms_ = nullptr;
  }

  /// Client options whose connector wraps each dialed connection in a
  /// FaultyTransport with `plan`. Short deadlines so dropped frames cost
  /// milliseconds, not the default multi-second timeout.
  static RemoteDatabaseOptions FaultyOptions(FaultPlan plan) {
    RemoteDatabaseOptions opts;
    opts.host = "127.0.0.1";
    opts.port = server_->port();
    opts.call_timeout_us = 250'000;
    opts.max_attempts = 6;
    opts.backoff_initial_us = 1'000;
    opts.backoff_max_us = 10'000;
    opts.connector = [plan]() -> Result<std::unique_ptr<ByteStream>> {
      auto dialed =
          SocketStream::Dial("127.0.0.1", server_->port(), 2'000'000);
      if (!dialed.ok()) return dialed.status();
      return std::unique_ptr<ByteStream>(
          new FaultyTransport(std::move(*dialed), plan));
    };
    return opts;
  }

  /// A port with nothing listening: bind an ephemeral port, then close
  /// the listener before anyone connects.
  static uint16_t DeadPort() {
    auto probe = TcpListener::Listen("127.0.0.1", 0);
    EXPECT_TRUE(probe.ok());
    uint16_t port = (*probe)->port();
    (*probe)->CloseListener();
    probe->reset();
    return port;
  }

  static ServiceOptions BaseServiceOptions() {
    ServiceOptions opts;
    opts.sampler.stopping.max_documents = 40;
    opts.seed_terms = *seed_terms_;
    opts.num_threads = 2;
    return opts;
  }

  static SearchEngine* engine_;
  static DbServer* server_;
  static std::vector<std::string>* seed_terms_;
};

SearchEngine* NetFaultTest::engine_ = nullptr;
DbServer* NetFaultTest::server_ = nullptr;
std::vector<std::string>* NetFaultTest::seed_terms_ = nullptr;

// Acceptance criterion: a transport dropping a bounded fraction of
// frames slows sampling down but does not change what is learned, and
// the retries are observable in qbs_net_retry_total.
TEST_F(NetFaultTest, SamplingConvergesOverLossyTransport) {
  uint64_t retry_total_before =
      MetricRegistry::Default().GetCounter("qbs_net_retry_total")->value();

  // Clean baseline: same seeds, same budget, healthy transport.
  SamplingService clean_service(BaseServiceOptions());
  ASSERT_TRUE(clean_service.AddDatabase(engine_).ok());
  ASSERT_TRUE(clean_service.RefreshAll().ok());

  // Every 9th frame sent by the client vanishes; every 5th read stalls
  // briefly. Both directions of flakiness, still convergent.
  FaultPlan plan;
  plan.drop_every_n_writes = 9;
  plan.delay_every_n_reads = 5;
  plan.delay_us = 2'000;
  auto remote = std::make_unique<RemoteTextDatabase>(FaultyOptions(plan));
  RemoteTextDatabase* remote_raw = remote.get();
  ASSERT_TRUE(remote->Connect().ok());

  SamplingService faulty_service(BaseServiceOptions());
  ASSERT_TRUE(faulty_service.AddDatabase(std::move(remote)).ok());
  Status status = faulty_service.RefreshAll();
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Identical learned model despite the lossy wire.
  std::ostringstream clean_bytes, faulty_bytes;
  ASSERT_TRUE(clean_service.state()[0].learned.Save(clean_bytes).ok());
  ASSERT_TRUE(faulty_service.state()[0].learned.Save(faulty_bytes).ok());
  EXPECT_EQ(clean_bytes.str(), faulty_bytes.str());

  // The faults really fired and the retry machinery absorbed them.
  EXPECT_GT(remote_raw->retries(), 0u);
  uint64_t retry_total_after =
      MetricRegistry::Default().GetCounter("qbs_net_retry_total")->value();
  EXPECT_GE(retry_total_after, retry_total_before + remote_raw->retries());
}

TEST_F(NetFaultTest, TruncatedFramesAreRetriedNotMisparsed) {
  FaultPlan plan;
  plan.truncate_every_n_writes = 7;
  RemoteTextDatabase remote(FaultyOptions(plan));
  ASSERT_TRUE(remote.Connect().ok());
  // Enough calls to hit several truncations; every one must either
  // succeed (after retry) — never decode garbage.
  for (int i = 0; i < 20; ++i) {
    auto hits = remote.RunQuery((*seed_terms_)[0], 4);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  }
  EXPECT_GT(remote.retries(), 0u);
}

TEST_F(NetFaultTest, ReadFailuresAreRetried) {
  FaultPlan plan;
  plan.fail_every_n_reads = 11;
  RemoteTextDatabase remote(FaultyOptions(plan));
  for (int i = 0; i < 20; ++i) {
    auto hits = remote.RunQuery((*seed_terms_)[0], 4);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  }
  EXPECT_GT(remote.retries(), 0u);
}

// The v2 batch frames through the same hostile transport: truncated
// writes and failing reads must end in retries or clean errors, and the
// documents that do arrive must be byte-correct — never a garbled
// decode of a half-frame.
TEST_F(NetFaultTest, BatchFramesSurviveTruncationAndReadFailures) {
  FaultPlan plan;
  plan.truncate_every_n_writes = 5;
  plan.fail_every_n_reads = 13;
  RemoteTextDatabase remote(FaultyOptions(plan));
  ASSERT_TRUE(remote.Connect().ok());
  ASSERT_EQ(remote.negotiated_version(), kWireProtocolVersion);
  for (int i = 0; i < 15; ++i) {
    const std::string& term = (*seed_terms_)[i % seed_terms_->size()];
    auto round = remote.QueryAndFetch(term, 4);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    ASSERT_EQ(round->documents.size(), round->hits.size());
    for (size_t k = 0; k < round->hits.size(); ++k) {
      auto local = engine_->FetchDocument(round->hits[k].handle);
      ASSERT_TRUE(local.ok());
      ASSERT_TRUE(round->documents[k].status.ok());
      EXPECT_EQ(round->documents[k].text, *local);
    }
    if (!round->hits.empty()) {
      std::vector<std::string> handles;
      for (const SearchHit& hit : round->hits) handles.push_back(hit.handle);
      auto batch = remote.FetchBatch(handles);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      ASSERT_EQ(batch->size(), handles.size());
      EXPECT_EQ((*batch)[0].handle, handles[0]);
      EXPECT_EQ((*batch)[0].text,
                *engine_->FetchDocument(handles[0]));
    }
  }
  EXPECT_GT(remote.retries(), 0u);
}

// Acceptance criterion: a hard-down server yields a clean, attributable
// per-database failure from RefreshAll — no hang, no crash — while
// healthy databases in the same federation still get their models.
TEST_F(NetFaultTest, HardDownServerFailsCleanlyOthersSucceed) {
  RemoteDatabaseOptions dead_opts;
  dead_opts.host = "127.0.0.1";
  dead_opts.port = DeadPort();
  dead_opts.connect_timeout_us = 200'000;
  dead_opts.call_timeout_us = 200'000;
  dead_opts.max_attempts = 2;
  dead_opts.backoff_initial_us = 1'000;
  dead_opts.backoff_max_us = 2'000;

  SamplingService service(BaseServiceOptions());
  ASSERT_TRUE(service.AddDatabase(
      std::make_unique<RemoteTextDatabase>(dead_opts)).ok());
  ASSERT_TRUE(service.AddDatabase(engine_).ok());

  uint64_t start_us = MonotonicMicros();
  Status status = service.RefreshAll();
  uint64_t elapsed_us = MonotonicMicros() - start_us;

  EXPECT_FALSE(status.ok());
  // Bounded: connect refusals are immediate; even with retries and
  // backoff this must come back in far under a minute.
  EXPECT_LT(elapsed_us, 30'000'000u);

  const DatabaseState& dead_state = service.state()[0];
  EXPECT_FALSE(dead_state.has_model);
  EXPECT_TRUE(dead_state.last_status.IsTransient())
      << dead_state.last_status.ToString();

  const DatabaseState& live_state = service.state()[1];
  EXPECT_TRUE(live_state.has_model);
  EXPECT_TRUE(live_state.last_status.ok());
}

TEST_F(NetFaultTest, PermanentServerErrorsAreNotRetried) {
  FaultPlan no_faults;
  RemoteTextDatabase remote(FaultyOptions(no_faults));
  auto fetched = remote.FetchDocument("definitely-missing");
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsNotFound());
  EXPECT_EQ(remote.retries(), 0u);
}

}  // namespace
}  // namespace qbs

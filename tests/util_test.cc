// Tests for Status/Result and string utilities.
#include <gtest/gtest.h>

#include "util/status.h"
#include "util/string_util.h"

namespace qbs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllPredicatesMatchTheirFactory) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, TransientClassification) {
  // Retryable: the peer may come back, the next attempt may fit the
  // deadline, the transport hiccup may pass.
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsTransient());
  EXPECT_TRUE(Status::IOError("x").IsTransient());
  // Permanent: retrying cannot change the outcome.
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::OutOfRange("x").IsTransient());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsTransient());
  EXPECT_FALSE(Status::Corruption("x").IsTransient());
  EXPECT_FALSE(Status::Unimplemented("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
}

TEST(StatusCodeNameTest, NewCodesHaveStableNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusCodeNameTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  QBS_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  QBS_ASSIGN_OR_RETURN(int h, Half(x));
  QBS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("Hello WORLD 123"), "hello world 123");
  EXPECT_EQ(AsciiLower(""), "");
  std::string s = "MiXeD";
  AsciiLowerInPlace(s);
  EXPECT_EQ(s, "mixed");
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("12345"));
  EXPECT_TRUE(IsAllDigits("0"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a45"));
  EXPECT_FALSE(IsAllDigits("1.5"));
  EXPECT_FALSE(IsAllDigits("-1"));
}

TEST(StringUtilTest, ContainsDigit) {
  EXPECT_TRUE(ContainsDigit("abc1"));
  EXPECT_FALSE(ContainsDigit("abc"));
  EXPECT_FALSE(ContainsDigit(""));
}

TEST(StringUtilTest, SplitNonEmpty) {
  auto parts = SplitNonEmpty("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitNonEmpty("", ",").empty());
  EXPECT_TRUE(SplitNonEmpty(",,,", ",").empty());
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(1078166), "1,078,166");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2 * 1024 * 1024), "2.0MB");
  EXPECT_EQ(HumanBytes(3435973836ull), "3.2GB");
}

}  // namespace
}  // namespace qbs

// Federation acceptance suite: the ShardMap placement function, and
// the FederatedSelector / FederationServer scatter-gather path over
// real shard BrokerServers on loopback sockets.
//
// The load-bearing test is byte-identity: a federated Select over a
// sharded fleet must reproduce a single broker holding the union of the
// shards' databases bit for bit — same names, same IEEE-754 score bits,
// same order, for every ranker, at every published epoch. The rest of
// the suite covers the failure surface: a down shard degrades to a
// flagged partial result (never an error), a shard republishing between
// the two phases forces a clean retry at the new epoch (never a mixed
// one), and a v4 peer that cannot speak the federation protocol is
// treated as down rather than answered wrongly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/remote_selector.h"
#include "broker/selection_broker.h"
#include "fed/federated_selector.h"
#include "fed/federation_server.h"
#include "fed/shard_map.h"
#include "net/wire.h"
#include "net/wire_client.h"
#include "selection/db_selection.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

// Raw query words; the analyzer stems them, so models must be built
// over the stemmed forms for broker-side query analysis to hit.
const std::vector<std::string>& VocabWords() {
  static const std::vector<std::string>* words = new std::vector<std::string>{
      "recipe", "cooking",  "quantum", "galaxy", "neural",
      "network", "protein", "genome",  "market", "symphony"};
  return *words;
}

std::vector<std::string> StemmedVocab() {
  Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> stems;
  for (const std::string& word : VocabWords()) {
    std::vector<std::string> terms = analyzer.Analyze(word);
    EXPECT_EQ(terms.size(), 1u) << word;
    for (std::string& t : terms) stems.push_back(std::move(t));
  }
  return stems;
}

// Deterministic seed from a database name, so a shard builds exactly
// the model the union collection holds for that name — independent of
// which shard the name landed on.
uint64_t NameSeed(const std::string& name, uint64_t epoch_seed) {
  uint64_t h = 0xCBF29CE484222325ULL ^ (epoch_seed * 0x9E3779B97F4A7C15ULL);
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

LanguageModel MakeModel(uint64_t seed, const std::vector<std::string>& vocab) {
  LanguageModel model;
  uint64_t max_df = 1;
  for (size_t t = 0; t < vocab.size(); ++t) {
    uint64_t df = 1 + (seed * 31 + t * 7) % 40;
    uint64_t ctf = df + (seed * 17 + t * 13) % 160;
    model.AddTerm(vocab[t], df, ctf);
    max_df = std::max(max_df, df);
  }
  model.set_num_docs(max_df + seed % 16 + 1);
  return model;
}

DatabaseCollection MakeCollection(const std::vector<std::string>& names,
                                  uint64_t epoch_seed,
                                  const std::vector<std::string>& vocab) {
  DatabaseCollection dbs;
  for (const std::string& name : names) {
    dbs.Add(name, MakeModel(NameSeed(name, epoch_seed), vocab));
  }
  return dbs;
}

std::vector<std::string> DbNames(size_t n) {
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    names.push_back("db-" + std::string(i < 10 ? "0" : "") +
                    std::to_string(i));
  }
  return names;
}

// One shard broker: registry + broker + server, heap-held so addresses
// stay stable while the cluster vector grows.
struct ShardNode {
  ModelRegistry registry;
  std::unique_ptr<SelectionBroker> broker;
  std::unique_ptr<BrokerServer> server;
};

struct Cluster {
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<std::string> addresses;
  std::vector<std::vector<std::string>> names_per_shard;
};

Cluster MakeCluster(
    size_t num_shards, const std::vector<std::string>& all_names,
    uint64_t epoch_seed, const std::vector<std::string>& vocab,
    const std::function<void(BrokerServerOptions&, size_t)>& tweak = {}) {
  Cluster cluster;
  cluster.names_per_shard.resize(num_shards);
  for (size_t i = 0; i < all_names.size(); ++i) {
    cluster.names_per_shard[i % num_shards].push_back(all_names[i]);
  }
  for (size_t i = 0; i < num_shards; ++i) {
    auto node = std::make_unique<ShardNode>();
    node->registry.Publish(
        MakeCollection(cluster.names_per_shard[i], epoch_seed, vocab));
    node->broker = std::make_unique<SelectionBroker>(&node->registry);
    BrokerServerOptions options;
    if (tweak) tweak(options, i);
    node->server =
        std::make_unique<BrokerServer>(node->broker.get(), options);
    EXPECT_TRUE(node->server->Start().ok());
    cluster.addresses.push_back("127.0.0.1:" +
                                std::to_string(node->server->port()));
    cluster.nodes.push_back(std::move(node));
  }
  return cluster;
}

// A federator over the cluster with fast-failing clients, so
// down-shard tests do not sit through the default retry backoff.
FederatedSelectorOptions FedOptionsFor(const Cluster& cluster) {
  FederatedSelectorOptions options;
  options.shards = cluster.addresses;
  options.client_template.max_attempts = 2;
  options.client_template.backoff_initial_us = 1'000;
  options.client_template.connect_timeout_us = 500'000;
  return options;
}

void ExpectSameRanking(const SelectionResult& got, const SelectionResult& want,
                       const std::string& context) {
  ASSERT_EQ(got.scores.size(), want.scores.size()) << context;
  for (size_t i = 0; i < want.scores.size(); ++i) {
    EXPECT_EQ(got.scores[i].db_name, want.scores[i].db_name)
        << context << " rank " << i;
    // Scores travel as raw IEEE-754 bits; equality here is bit-identity.
    EXPECT_EQ(got.scores[i].score, want.scores[i].score)
        << context << " rank " << i << " (" << want.scores[i].db_name << ")";
  }
}

// --- ShardMap ------------------------------------------------------------

TEST(ShardMapTest, PlacementIsDeterministicAndInRange) {
  std::vector<std::string> shards = {"a:1", "b:2", "c:3", "d:4"};
  ShardMap map1(shards);
  ShardMap map2(shards);
  EXPECT_EQ(map1.version(), map2.version());
  EXPECT_EQ(map1.size(), shards.size());
  for (size_t i = 0; i < 100; ++i) {
    std::string name = "db-" + std::to_string(i);
    size_t owner = map1.OwnerIndexOf(name);
    ASSERT_LT(owner, shards.size()) << name;
    EXPECT_EQ(owner, map2.OwnerIndexOf(name)) << name;
    EXPECT_EQ(map1.OwnerOf(name), shards[owner]) << name;
  }
}

TEST(ShardMapTest, EveryShardOwnsASliceOfAHundredNames) {
  ShardMap map({"a:1", "b:2", "c:3", "d:4"});
  std::map<size_t, size_t> owned;
  for (size_t i = 0; i < 100; ++i) {
    owned[map.OwnerIndexOf("db-" + std::to_string(i))]++;
  }
  // 64 vnodes per shard smooth the split enough that no shard ends up
  // empty over 100 names.
  EXPECT_EQ(owned.size(), 4u);
  for (const auto& [shard, count] : owned) {
    EXPECT_GE(count, 1u) << "shard " << shard;
  }
}

TEST(ShardMapTest, VersionDigestsListOrderAndVnodes) {
  ShardMap base({"a:1", "b:2", "c:3"});
  ShardMap reordered({"b:2", "a:1", "c:3"});
  ShardMap grown({"a:1", "b:2", "c:3", "d:4"});
  ShardMap smoothed({"a:1", "b:2", "c:3"}, ShardMapOptions{.vnodes_per_shard = 128});
  EXPECT_NE(base.version(), reordered.version());
  EXPECT_NE(base.version(), grown.version());
  EXPECT_NE(base.version(), smoothed.version());
}

TEST(ShardMapTest, AddingAShardMovesOnlyAMinorityAndOnlyToTheNewShard) {
  std::vector<std::string> four = {"a:1", "b:2", "c:3", "d:4"};
  std::vector<std::string> five = four;
  five.push_back("e:5");
  ShardMap before(four);
  ShardMap after(five);
  size_t moved = 0;
  const size_t kNames = 400;
  for (size_t i = 0; i < kNames; ++i) {
    std::string name = "db-" + std::to_string(i);
    const std::string& old_owner = before.OwnerOf(name);
    const std::string& new_owner = after.OwnerOf(name);
    if (new_owner != old_owner) {
      ++moved;
      // Consistent hashing: a name that moves can only move to the
      // shard whose vnodes were inserted.
      EXPECT_EQ(new_owner, "e:5") << name << " moved to " << new_owner;
    }
  }
  // Expected move fraction is ~1/5; anything under half proves we are
  // not rehashing the world (`hash % N` would move ~4/5).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kNames / 2);
}

// --- The acceptance test -------------------------------------------------

TEST(FederatedSelectTest, ByteIdenticalToUnionBrokerAtEveryEpoch) {
  const std::vector<std::string> vocab = StemmedVocab();
  const std::vector<std::string> names = DbNames(13);
  const std::vector<std::string> queries = {
      "recipe cooking", "quantum galaxy neural", "protein",
      "market symphony network genome"};

  Cluster cluster = MakeCluster(4, names, /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));

  ModelRegistry union_registry;
  union_registry.Publish(MakeCollection(names, /*epoch_seed=*/1, vocab));
  SelectionBroker union_broker(&union_registry);

  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    if (epoch == 2) {
      // Republish everything with different models: same comparison
      // must hold at the new epoch.
      for (size_t i = 0; i < cluster.nodes.size(); ++i) {
        cluster.nodes[i]->registry.Publish(
            MakeCollection(cluster.names_per_shard[i], epoch, vocab));
      }
      union_registry.Publish(MakeCollection(names, epoch, vocab));
    }
    for (const std::string& query : queries) {
      for (const std::string& ranker : KnownRankerNames()) {
        for (size_t top_k : {size_t{0}, size_t{3}}) {
          SCOPED_TRACE("epoch=" + std::to_string(epoch) + " ranker=" +
                       ranker + " top_k=" + std::to_string(top_k) +
                       " query=" + query);
          auto got = fed.Select(query, ranker, top_k);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          auto want = union_broker.Select(query, ranker, top_k);
          ASSERT_TRUE(want.ok()) << want.status().ToString();
          ExpectSameRanking(*got, *want, ranker);
          EXPECT_FALSE(got->partial);
          EXPECT_TRUE(got->down_shards.empty());
          EXPECT_EQ(got->epoch, epoch);
          ASSERT_EQ(got->shard_epochs.size(), cluster.addresses.size());
          for (const ShardEpoch& se : got->shard_epochs) {
            EXPECT_EQ(se.epoch, epoch) << se.shard;
          }
        }
      }
    }
  }
}

TEST(FederatedSelectTest, TieBreakOrderIsNameAscendingAcrossShards) {
  const std::vector<std::string> vocab = StemmedVocab();
  // Interleave names across shards so the merged tie run is assembled
  // from all three; identical models mean identical scores everywhere.
  const std::vector<std::string> names = {"ant", "bee", "cat",
                                          "dog", "eel", "fox"};
  Cluster cluster;
  cluster.names_per_shard = {{"ant", "dog"}, {"bee", "eel"}, {"cat", "fox"}};
  for (size_t i = 0; i < 3; ++i) {
    auto node = std::make_unique<ShardNode>();
    DatabaseCollection dbs;
    for (const std::string& name : cluster.names_per_shard[i]) {
      dbs.Add(name, MakeModel(/*seed=*/7, vocab));  // same model: all tie
    }
    node->registry.Publish(std::move(dbs));
    node->broker = std::make_unique<SelectionBroker>(&node->registry);
    node->server = std::make_unique<BrokerServer>(node->broker.get(),
                                                  BrokerServerOptions{});
    ASSERT_TRUE(node->server->Start().ok());
    cluster.addresses.push_back("127.0.0.1:" +
                                std::to_string(node->server->port()));
    cluster.nodes.push_back(std::move(node));
  }
  FederatedSelector fed(FedOptionsFor(cluster));

  ModelRegistry union_registry;
  {
    DatabaseCollection dbs;
    for (const std::string& name : names) {
      dbs.Add(name, MakeModel(/*seed=*/7, vocab));
    }
    union_registry.Publish(std::move(dbs));
  }
  SelectionBroker union_broker(&union_registry);

  for (const std::string& ranker : KnownRankerNames()) {
    auto got = fed.Select("recipe quantum", ranker);
    ASSERT_TRUE(got.ok()) << ranker << ": " << got.status().ToString();
    auto want = union_broker.Select("recipe quantum", ranker);
    ASSERT_TRUE(want.ok()) << ranker;
    ExpectSameRanking(*got, *want, ranker);
    ASSERT_EQ(got->scores.size(), names.size()) << ranker;
    for (size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(got->scores[i].db_name, names[i])
          << ranker << ": equal scores must merge name-ascending";
    }
  }
}

// --- Degradation ---------------------------------------------------------

TEST(FederatedSelectTest, DownShardYieldsFlaggedPartialOverLiveSubset) {
  const std::vector<std::string> vocab = StemmedVocab();
  const std::vector<std::string> names = DbNames(9);
  Cluster cluster = MakeCluster(3, names, /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));

  // Hard-down: the shard's server stops listening entirely.
  cluster.nodes[1]->server->Stop();

  // The live subset a single broker would serve.
  std::vector<std::string> live_names;
  for (size_t i : {size_t{0}, size_t{2}}) {
    for (const std::string& n : cluster.names_per_shard[i]) {
      live_names.push_back(n);
    }
  }
  ModelRegistry live_registry;
  live_registry.Publish(MakeCollection(live_names, /*epoch_seed=*/1, vocab));
  SelectionBroker live_broker(&live_registry);

  for (const std::string& ranker : KnownRankerNames()) {
    auto got = fed.Select("recipe galaxy protein", ranker);
    ASSERT_TRUE(got.ok()) << ranker << ": " << got.status().ToString();
    EXPECT_TRUE(got->partial) << ranker;
    ASSERT_EQ(got->down_shards.size(), 1u) << ranker;
    EXPECT_EQ(got->down_shards[0], cluster.addresses[1]) << ranker;
    EXPECT_EQ(got->shard_epochs.size(), 2u) << ranker;
    auto want = live_broker.Select("recipe galaxy protein", ranker);
    ASSERT_TRUE(want.ok()) << ranker;
    ExpectSameRanking(*got, *want, ranker);
  }

  // The health board remembers the observation without a live probe.
  std::vector<ShardStatusInfo> board = fed.LastKnownShardStatus();
  ASSERT_EQ(board.size(), 3u);
  EXPECT_TRUE(board[0].healthy);
  EXPECT_FALSE(board[1].healthy);
  EXPECT_TRUE(board[2].healthy);
}

TEST(FederatedSelectTest, AllShardsDownIsUnavailable) {
  const std::vector<std::string> vocab = StemmedVocab();
  Cluster cluster = MakeCluster(2, DbNames(4), /*epoch_seed=*/1, vocab);
  cluster.nodes[0]->server->Stop();
  cluster.nodes[1]->server->Stop();
  FederatedSelector fed(FedOptionsFor(cluster));
  auto result = fed.Select("recipe", "cori");
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
}

TEST(FederatedSelectTest, UnknownRankerIsInvalidArgumentNotRetried) {
  const std::vector<std::string> vocab = StemmedVocab();
  Cluster cluster = MakeCluster(2, DbNames(4), /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));
  auto result = fed.Select("recipe", "no-such-ranker");
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST(FederatedSelectTest, RepublishBetweenPhasesRetriesAtTheNewEpoch) {
  const std::vector<std::string> vocab = StemmedVocab();
  const std::vector<std::string> names = DbNames(6);

  // Shard 0 republishes (same content, new epoch) inside its second
  // admitted Select — exactly between phase 1 (stats at epoch 1) and
  // phase 2 (rank pinned to epoch 1). The pinned call must fail
  // FailedPrecondition and the whole query must restart cleanly at
  // epoch 2; no ranking may mix the two epochs.
  std::atomic<int> selects{0};
  ModelRegistry* republish_target = nullptr;
  std::vector<std::string> shard0_names;
  Cluster cluster = MakeCluster(
      2, names, /*epoch_seed=*/1, vocab,
      [&](BrokerServerOptions& options, size_t shard) {
        if (shard != 0) return;
        options.select_hook = [&] {
          if (++selects == 2) {
            republish_target->Publish(
                MakeCollection(shard0_names, /*epoch_seed=*/1, vocab));
          }
        };
      });
  republish_target = &cluster.nodes[0]->registry;
  shard0_names = cluster.names_per_shard[0];

  FederatedSelector fed(FedOptionsFor(cluster));
  auto got = fed.Select("recipe quantum market", "cori");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_GE(selects.load(), 3) << "expected a retried attempt";

  // The retried attempt pinned shard 0 at its new epoch.
  ASSERT_EQ(got->shard_epochs.size(), 2u);
  std::map<std::string, uint64_t> epochs;
  for (const ShardEpoch& se : got->shard_epochs) epochs[se.shard] = se.epoch;
  EXPECT_EQ(epochs[cluster.addresses[0]], 2u);
  EXPECT_EQ(epochs[cluster.addresses[1]], 1u);
  EXPECT_EQ(got->epoch, 2u);
  EXPECT_FALSE(got->partial);

  // Same content at both epochs, so the ranking still equals the union.
  ModelRegistry union_registry;
  union_registry.Publish(MakeCollection(names, /*epoch_seed=*/1, vocab));
  SelectionBroker union_broker(&union_registry);
  auto want = union_broker.Select("recipe quantum market", "cori");
  ASSERT_TRUE(want.ok());
  ExpectSameRanking(*got, *want, "cori after retry");
}

TEST(FederatedSelectTest, V4PeerIsTreatedAsDownNotMisranked) {
  const std::vector<std::string> vocab = StemmedVocab();
  const std::vector<std::string> names = DbNames(6);
  // Shard 1 only negotiates v4: it cannot answer the scatter-gather
  // extensions, so the federator must exclude it (flagged partial)
  // rather than fall back to locally-scored, globally-wrong results.
  Cluster cluster = MakeCluster(
      2, names, /*epoch_seed=*/1, vocab,
      [](BrokerServerOptions& options, size_t shard) {
        if (shard == 1) options.max_protocol_version = 4;
      });
  FederatedSelector fed(FedOptionsFor(cluster));

  ModelRegistry live_registry;
  live_registry.Publish(
      MakeCollection(cluster.names_per_shard[0], /*epoch_seed=*/1, vocab));
  SelectionBroker live_broker(&live_registry);

  auto got = fed.Select("recipe network", "kl");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->partial);
  ASSERT_EQ(got->down_shards.size(), 1u);
  EXPECT_EQ(got->down_shards[0], cluster.addresses[1]);
  auto want = live_broker.Select("recipe network", "kl");
  ASSERT_TRUE(want.ok());
  ExpectSameRanking(*got, *want, "kl v4 peer");
}

// --- FederationServer ----------------------------------------------------

TEST(FederationServerTest, LooksLikeOneBigBrokerToARemoteSelector) {
  const std::vector<std::string> vocab = StemmedVocab();
  const std::vector<std::string> names = DbNames(9);
  Cluster cluster = MakeCluster(3, names, /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));
  FederationServer server(&fed, {});
  ASSERT_TRUE(server.Start().ok());

  ModelRegistry union_registry;
  union_registry.Publish(MakeCollection(names, /*epoch_seed=*/1, vocab));
  SelectionBroker union_broker(&union_registry);

  WireClientOptions client_options;
  client_options.port = server.port();
  RemoteSelector selector(client_options);
  ASSERT_TRUE(selector.Connect().ok());
  EXPECT_EQ(selector.name(), "qbs-fed");

  for (const std::string& ranker : KnownRankerNames()) {
    auto got = selector.Select("galaxy genome recipe", ranker);
    ASSERT_TRUE(got.ok()) << ranker << ": " << got.status().ToString();
    auto want = union_broker.Select("galaxy genome recipe", ranker);
    ASSERT_TRUE(want.ok()) << ranker;
    ExpectSameRanking(*got, *want, ranker);
    EXPECT_FALSE(got->partial) << ranker;
    EXPECT_EQ(got->shard_epochs.size(), 3u) << ranker;
  }
  // The satellite seam: the selector surfaces the epoch the server
  // reported on the last Select.
  EXPECT_EQ(selector.last_epoch(), 1u);

  auto info = selector.BrokerStatus();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->databases, names.size());
  EXPECT_GE(info->selects_total, KnownRankerNames().size());
}

TEST(FederationServerTest, ShardInfoExposesTheTopology) {
  const std::vector<std::string> vocab = StemmedVocab();
  Cluster cluster = MakeCluster(3, DbNames(6), /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));
  FederationServer server(&fed, {});
  ASSERT_TRUE(server.Start().ok());

  WireClientOptions client_options;
  client_options.port = server.port();
  WireClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.negotiated_version(), kWireProtocolVersion);

  WireRequest request;
  request.protocol_version = MinVersionForMethod(WireMethod::kShardInfo);
  request.method = WireMethod::kShardInfo;
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  EXPECT_EQ(response->shard_map_version, fed.shard_map().version());
  ASSERT_EQ(response->shards.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(response->shards[i].address, cluster.addresses[i]);
    EXPECT_TRUE(response->shards[i].healthy) << cluster.addresses[i];
    EXPECT_EQ(response->shards[i].epoch, 1u) << cluster.addresses[i];
    EXPECT_EQ(response->shards[i].databases, 2u) << cluster.addresses[i];
  }
}

TEST(FederationServerTest, ScatterGatherExtensionsAreShardBrokerOnly) {
  const std::vector<std::string> vocab = StemmedVocab();
  Cluster cluster = MakeCluster(2, DbNames(4), /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));
  FederationServer server(&fed, {});
  ASSERT_TRUE(server.Start().ok());

  WireClientOptions client_options;
  client_options.port = server.port();
  WireClient client(client_options);

  // A federation front-end is not a shard: the phase-1/phase-2
  // extensions and snapshot fetch must be refused, not half-answered.
  // WireClient::Call surfaces non-transient server statuses as the
  // call's own status, so Unimplemented arrives as the Result error.
  WireRequest stats_only;
  stats_only.protocol_version = kFederationMinVersion;
  stats_only.method = WireMethod::kSelect;
  stats_only.query = "recipe";
  stats_only.ranker = "cori";
  stats_only.stats_only = true;
  auto response = client.Call(stats_only);
  EXPECT_TRUE(response.status().IsUnimplemented())
      << response.status().ToString();

  WireRequest fetch;
  fetch.protocol_version = MinVersionForMethod(WireMethod::kSnapshotFetch);
  fetch.method = WireMethod::kSnapshotFetch;
  response = client.Call(fetch);
  EXPECT_TRUE(response.status().IsUnimplemented())
      << response.status().ToString();
}

TEST(FederationServerTest, V3PinnedClientStillGetsPlainRankings) {
  const std::vector<std::string> vocab = StemmedVocab();
  const std::vector<std::string> names = DbNames(6);
  Cluster cluster = MakeCluster(2, names, /*epoch_seed=*/1, vocab);
  FederatedSelector fed(FedOptionsFor(cluster));
  FederationServer server(&fed, {});
  ASSERT_TRUE(server.Start().ok());

  ModelRegistry union_registry;
  union_registry.Publish(MakeCollection(names, /*epoch_seed=*/1, vocab));
  SelectionBroker union_broker(&union_registry);

  WireClientOptions client_options;
  client_options.port = server.port();
  client_options.max_protocol_version = 3;
  RemoteSelector selector(client_options);
  ASSERT_TRUE(selector.Connect().ok());
  EXPECT_EQ(selector.negotiated_version(), 3u);

  auto got = selector.Select("recipe galaxy", "vgloss");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = union_broker.Select("recipe galaxy", "vgloss");
  ASSERT_TRUE(want.ok());
  ExpectSameRanking(*got, *want, "vgloss v3 client");
  // The v3 frame has no federation extension: partial/epoch vectors
  // simply do not travel.
  EXPECT_FALSE(got->partial);
  EXPECT_TRUE(got->shard_epochs.empty());
}

}  // namespace
}  // namespace qbs

// The non-blocking socket primitives under the epoll servers
// (net/socket.h): typed WouldBlock instead of blocking, EINTR retried
// invisibly, EOF and peer-reset surfacing as Unavailable. These are the
// contracts the event loop's correctness rests on, so each is pinned
// directly against kernel behavior on socketpairs and loopback sockets.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "util/fd.h"
#include "util/status.h"

namespace qbs {
namespace {

/// A connected AF_UNIX socketpair, both ends non-blocking — the
/// smallest harness that exercises real kernel buffer semantics.
struct Pair {
  UniqueFd a;
  UniqueFd b;

  static Pair Make() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Pair p;
    p.a.Reset(fds[0]);
    p.b.Reset(fds[1]);
    EXPECT_TRUE(SetNonBlocking(p.a.get(), true).ok());
    EXPECT_TRUE(SetNonBlocking(p.b.get(), true).ok());
    return p;
  }
};

TEST(SetNonBlockingTest, SetsAndClearsTheFlag) {
  Pair p = Pair::Make();
  // Cleared again, a read with no data would block — prove the flag
  // state indirectly via fcntl, not by hanging the test.
  ASSERT_TRUE(SetNonBlocking(p.a.get(), false).ok());
  uint8_t byte = 0;
  // Re-enable and observe WouldBlock, the behavior the loop depends on.
  ASSERT_TRUE(SetNonBlocking(p.a.get(), true).ok());
  auto r = NonBlockingRead(p.a.get(), &byte, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsWouldBlock()) << r.status().ToString();
}

TEST(SetNonBlockingTest, RejectsBadFd) {
  EXPECT_FALSE(SetNonBlocking(-1, true).ok());
}

TEST(NonBlockingReadTest, EmptySocketIsWouldBlockNotAnError) {
  Pair p = Pair::Make();
  uint8_t byte = 0;
  auto r = NonBlockingRead(p.a.get(), &byte, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsWouldBlock());
  // WouldBlock is a local readiness signal, not an RPC outcome: it must
  // never be classified retryable-transient (a blind retry loop on it
  // would busy-spin a core).
  EXPECT_FALSE(r.status().IsTransient());
}

TEST(NonBlockingReadTest, ReadsWhatIsBuffered) {
  Pair p = Pair::Make();
  const uint8_t data[5] = {1, 2, 3, 4, 5};
  auto w = NonBlockingWrite(p.a.get(), data, sizeof(data));
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(*w, sizeof(data));
  uint8_t buffer[16] = {0};
  auto r = NonBlockingRead(p.b.get(), buffer, sizeof(buffer));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, sizeof(data));
  EXPECT_EQ(std::memcmp(buffer, data, sizeof(data)), 0);
}

TEST(NonBlockingReadTest, PeerCloseIsUnavailable) {
  Pair p = Pair::Make();
  p.a.Reset();  // clean close
  uint8_t byte = 0;
  auto r = NonBlockingRead(p.b.get(), &byte, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
}

TEST(NonBlockingWriteTest, FullBufferIsWouldBlockThenShortWrites) {
  Pair p = Pair::Make();
  // Stuff the pipe until the kernel refuses more.
  std::vector<uint8_t> chunk(64 * 1024, 0xAB);
  size_t total = 0;
  bool saw_would_block = false;
  for (int i = 0; i < 1024; ++i) {
    auto w = NonBlockingWrite(p.a.get(), chunk.data(), chunk.size());
    if (!w.ok()) {
      ASSERT_TRUE(w.status().IsWouldBlock()) << w.status().ToString();
      saw_would_block = true;
      break;
    }
    total += *w;  // short writes are success, not errors
  }
  ASSERT_TRUE(saw_would_block);
  ASSERT_GT(total, 0u);
  // Draining the peer makes the writer ready again.
  std::vector<uint8_t> sink(chunk.size());
  auto r = NonBlockingRead(p.b.get(), sink.data(), sink.size());
  ASSERT_TRUE(r.ok());
  auto w = NonBlockingWrite(p.a.get(), chunk.data(), 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 1u);
}

TEST(NonBlockingWriteTest, PeerResetIsUnavailable) {
  Pair p = Pair::Make();
  // Leave unread data at the peer, then close it: the kernel turns the
  // next writes into ECONNRESET/EPIPE, which must surface as the typed,
  // retry-eligible Unavailable rather than a generic IOError.
  const uint8_t data[3] = {9, 9, 9};
  ASSERT_TRUE(NonBlockingWrite(p.a.get(), data, sizeof(data)).ok());
  p.b.Reset();
  Status last = Status::OK();
  for (int i = 0; i < 4 && last.ok(); ++i) {
    auto w = NonBlockingWrite(p.a.get(), data, sizeof(data));
    last = w.ok() ? Status::OK() : w.status();
  }
  ASSERT_FALSE(last.ok());
  EXPECT_TRUE(last.IsUnavailable()) << last.ToString();
}

// EINTR must be invisible to callers: a signal storm against a thread
// pumping bytes through the pair may interrupt recv/send mid-call, and
// every byte still arrives exactly once, in order.
TEST(NonBlockingIoTest, SignalStormDoesNotCorruptTheStream) {
  struct sigaction action {};
  action.sa_handler = [](int) {};  // no SA_RESTART: syscalls DO see EINTR
  sigemptyset(&action.sa_mask);
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  Pair p = Pair::Make();
  constexpr size_t kTotal = 4u << 20;
  std::atomic<bool> done{false};
  std::atomic<bool> storm_stopped{false};

  std::thread pump([&] {
    std::vector<uint8_t> out(8192);
    std::iota(out.begin(), out.end(), 0);
    size_t sent = 0;
    size_t received = 0;
    std::vector<uint8_t> in(8192);
    uint8_t expect = 0;
    while (received < kTotal) {
      if (sent < kTotal) {
        const size_t offset = sent % out.size();
        auto w = NonBlockingWrite(p.a.get(), out.data() + offset,
                                  out.size() - offset);
        if (w.ok()) {
          sent += *w;
        } else {
          ASSERT_TRUE(w.status().IsWouldBlock()) << w.status().ToString();
        }
      }
      auto r = NonBlockingRead(p.b.get(), in.data(), in.size());
      if (r.ok()) {
        for (size_t i = 0; i < *r; ++i) {
          ASSERT_EQ(in[i], expect) << "stream corrupted at byte "
                                   << received + i;
          ++expect;
        }
        received += *r;
      } else {
        ASSERT_TRUE(r.status().IsWouldBlock()) << r.status().ToString();
      }
    }
    done.store(true);
    // Outlive the storm so no signal can target a finished thread.
    while (!storm_stopped.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Hammer the pump with signals while it moves 4 MiB.
  while (!done.load()) {
    pthread_kill(pump.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  storm_stopped.store(true);
  pump.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);
}

TEST(AcceptNonBlockingTest, NoPendingConnectionIsWouldBlock) {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(SetNonBlocking((*listener)->fd(), true).ok());
  auto accepted = (*listener)->AcceptNonBlocking();
  ASSERT_FALSE(accepted.ok());
  EXPECT_TRUE(accepted.status().IsWouldBlock());
}

TEST(AcceptNonBlockingTest, AcceptsAPendingConnection) {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(SetNonBlocking((*listener)->fd(), true).ok());
  auto client = SocketStream::Dial("127.0.0.1", (*listener)->port(), 500'000);
  ASSERT_TRUE(client.ok());
  // The TCP handshake completes asynchronously; poll briefly.
  Result<UniqueFd> accepted = Status::WouldBlock("not yet");
  for (int i = 0; i < 200 && !accepted.ok(); ++i) {
    accepted = (*listener)->AcceptNonBlocking();
    if (!accepted.ok()) {
      ASSERT_TRUE(accepted.status().IsWouldBlock());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->valid());
}

TEST(AcceptNonBlockingTest, ClosedListenerIsUnavailable) {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  (*listener)->CloseListener();
  auto accepted = (*listener)->AcceptNonBlocking();
  ASSERT_FALSE(accepted.ok());
  EXPECT_TRUE(accepted.status().IsUnavailable());
}

}  // namespace
}  // namespace qbs

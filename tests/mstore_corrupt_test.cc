// Adversarial tests for the mapped model store: corrupt images must be
// rejected with a typed Status — never a crash, never an out-of-bounds
// read (the asan/ubsan configuration is this suite's real judge).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "lm/language_model.h"
#include "mstore/format.h"
#include "mstore/mapped_model_store.h"
#include "mstore/model_store_writer.h"
#include "storage/file_io.h"
#include "util/crc32c.h"
#include "util/endian.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  fs::path p = fs::temp_directory_path() /
               ("qbs_mstore_corrupt_" + tag + "_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                ".qms");
  fs::remove(p);
  return p.string();
}

// A store with enough structure to make every section interesting.
std::string ValidImage() {
  LanguageModel a;
  a.AddTerm("apple", 3, 7);
  a.AddTerm("apricot", 2, 2);
  a.AddTerm("banana", 1, 1);
  a.AddTerm("blueberry", 4, 9);
  a.AddTerm("cherry", 10, 42);
  a.set_num_docs(12);
  LanguageModel b;
  b.AddTerm("zebra", 1, 1);
  b.set_num_docs(1);
  ModelStoreWriter::Options opts;
  opts.block_size = 2;
  ModelStoreWriter writer(opts);
  EXPECT_TRUE(writer.Add("first", a).ok());
  EXPECT_TRUE(writer.Add("second", b).ok());
  auto image = writer.Serialize();
  EXPECT_TRUE(image.ok());
  return *image;
}

// Writes `image`, opens it, and returns the status. The file is removed
// either way.
Status OpenImage(const std::string& image, const std::string& tag,
                 bool verify = true) {
  std::string path = TempPath(tag);
  EXPECT_TRUE(WriteFileAtomic(path, image).ok());
  MappedModelStore::OpenOptions opts;
  opts.verify = verify;
  auto store = MappedModelStore::Open(path, opts);
  fs::remove(path);
  return store.status();
}

TEST(MstoreCorruptTest, ValidImageOpens) {
  EXPECT_TRUE(OpenImage(ValidImage(), "valid").ok());
}

TEST(MstoreCorruptTest, RejectsBadMagic) {
  std::string image = ValidImage();
  image[0] ^= 0x01;
  Status s = OpenImage(image, "magic");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(MstoreCorruptTest, RejectsEveryHeaderBitFlip) {
  const std::string image = ValidImage();
  // Flip one bit in each header byte past the magic. Every flip must be
  // caught: by the header CRC, or (for the CRC bytes themselves) by the
  // CRC no longer matching the header it covers.
  for (size_t byte = kModelStoreMagicSize; byte < kModelStoreHeaderSize;
       ++byte) {
    std::string mutated = image;
    mutated[byte] ^= 0x40;
    Status s = OpenImage(mutated, "hdrflip" + std::to_string(byte));
    EXPECT_FALSE(s.ok()) << "header byte " << byte;
    EXPECT_TRUE(s.code() == StatusCode::kCorruption ||
                s.code() == StatusCode::kUnimplemented)
        << "header byte " << byte << ": " << s.ToString();
  }
}

TEST(MstoreCorruptTest, RejectsFutureVersion) {
  std::string image = ValidImage();
  StoreLe32(reinterpret_cast<uint8_t*>(&image[8]), kModelStoreVersion + 1);
  // Re-seal the header so only the version is "wrong".
  std::string header = image.substr(0, 40);
  StoreLe32(reinterpret_cast<uint8_t*>(&image[40]), Crc32c::Of(header));
  Status s = OpenImage(image, "version");
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

TEST(MstoreCorruptTest, RejectsUnknownFlags) {
  std::string image = ValidImage();
  StoreLe32(reinterpret_cast<uint8_t*>(&image[12]), 0x8000'0001u);
  std::string header = image.substr(0, 40);
  StoreLe32(reinterpret_cast<uint8_t*>(&image[40]), Crc32c::Of(header));
  Status s = OpenImage(image, "flags");
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

TEST(MstoreCorruptTest, RejectsTruncationAtEveryStride) {
  const std::string image = ValidImage();
  // Cut the file at a spread of lengths, including 0, mid-header,
  // mid-section, mid-directory, and one-byte-short.
  std::vector<size_t> cuts = {0, 1, 8, kModelStoreHeaderSize - 1,
                              kModelStoreHeaderSize};
  for (size_t len = kModelStoreHeaderSize; len < image.size(); len += 37) {
    cuts.push_back(len);
  }
  cuts.push_back(image.size() - 1);
  for (size_t len : cuts) {
    Status s = OpenImage(image.substr(0, len), "cut" + std::to_string(len));
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "cut at " << len;
  }
}

TEST(MstoreCorruptTest, RejectsTrailingGarbage) {
  Status s = OpenImage(ValidImage() + "extra!", "trailing");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(MstoreCorruptTest, RejectsEveryBodyBitFlipUnderVerify) {
  const std::string image = ValidImage();
  // Flip a bit in every byte of the body (sections + directory). Under
  // verify, each flip must be caught by a section CRC, the directory
  // CRC, or a structural check — silently serving a flipped dictionary
  // is the one unacceptable outcome.
  for (size_t byte = kModelStoreHeaderSize; byte < image.size(); ++byte) {
    std::string mutated = image;
    mutated[byte] ^= 0x10;
    Status s = OpenImage(mutated, "bodyflip");
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "body byte " << byte << ": " << s.ToString();
  }
}

TEST(MstoreCorruptTest, NoVerifyStillFailsClosedOnLookup) {
  const std::string image = ValidImage();
  // Without verify, a corrupted dictionary may open — but every lookup
  // and iteration stays bounds-checked: asan/ubsan holds this suite to
  // "no out-of-bounds read", and lookups just miss.
  for (size_t byte = kModelStoreHeaderSize; byte < image.size(); byte += 3) {
    std::string mutated = image;
    mutated[byte] ^= 0x08;
    std::string path = TempPath("noverify");
    ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());
    MappedModelStore::OpenOptions opts;
    opts.verify = false;
    auto store = MappedModelStore::Open(path, opts);
    fs::remove(path);
    if (!store.ok()) continue;  // structural checks still caught it
    for (size_t i = 0; i < (*store)->num_models(); ++i) {
      TermStats s;
      (*store)->model(i).FindStats("apple", &s);
      (*store)->model(i).FindStats("cherry", &s);
      (*store)->model(i).ForEachTerm(
          [](std::string_view, const TermStats&) {});
    }
  }
}

TEST(MstoreCorruptTest, RejectsOverlongVarintInDictionary) {
  // Hand-build a one-model store whose single dictionary entry encodes
  // prefix_len 0 as an overlong two-byte varint (0x80 0x00).
  std::string term_data;
  term_data.push_back(static_cast<char>(0x80));  // overlong prefix_len 0
  term_data.push_back(static_cast<char>(0x00));
  MstorePutVarint64(&term_data, 1);  // suffix_len
  term_data += "a";
  MstorePutVarint64(&term_data, 1);  // df
  MstorePutVarint64(&term_data, 1);  // ctf

  std::string section;
  AppendLe64(&section, 1);  // num_docs
  AppendLe64(&section, 1);  // total_terms
  AppendLe64(&section, 1);  // term_count
  AppendLe32(&section, 16);  // block_size
  AppendLe32(&section, 1);   // num_blocks
  AppendLe32(&section, 0);   // block 0 offset
  section += term_data;

  std::string out(kModelStoreHeaderSize, '\0');
  while (out.size() % kModelStoreAlignment != 0) out.push_back('\0');
  const uint64_t section_offset = out.size();
  out += section;
  while (out.size() % kModelStoreAlignment != 0) out.push_back('\0');
  const uint64_t dir_offset = out.size();
  std::string directory;
  MstorePutVarint64(&directory, 2);
  directory += "db";
  AppendLe64(&directory, section_offset);
  AppendLe64(&directory, section.size());
  AppendLe32(&directory, Crc32c::Of(section));
  out += directory;
  AppendLe32(&out, Crc32c::Of(directory));
  std::string header;
  header.append(kModelStoreMagic, kModelStoreMagicSize);
  AppendLe32(&header, kModelStoreVersion);
  AppendLe32(&header, 0);
  AppendLe64(&header, 1);
  AppendLe64(&header, dir_offset);
  AppendLe64(&header, directory.size());
  AppendLe32(&header, Crc32c::Of(header));
  out.replace(0, kModelStoreHeaderSize, header);

  Status s = OpenImage(out, "overlong");
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(MstoreCorruptTest, RejectsUnsortedDictionary) {
  // Two single-term blocks in descending order: block index and CRCs are
  // all internally consistent, so only the verify walk can catch it.
  std::string term_data;
  std::vector<uint32_t> offsets;
  for (const std::string term : {"zebra", "apple"}) {
    offsets.push_back(static_cast<uint32_t>(term_data.size()));
    MstorePutVarint64(&term_data, 0);
    MstorePutVarint64(&term_data, term.size());
    term_data += term;
    MstorePutVarint64(&term_data, 1);
    MstorePutVarint64(&term_data, 1);
  }
  std::string section;
  AppendLe64(&section, 2);
  AppendLe64(&section, 2);
  AppendLe64(&section, 2);
  AppendLe32(&section, 1);  // block_size 1
  AppendLe32(&section, 2);  // num_blocks
  for (uint32_t off : offsets) AppendLe32(&section, off);
  section += term_data;

  std::string out(kModelStoreHeaderSize, '\0');
  while (out.size() % kModelStoreAlignment != 0) out.push_back('\0');
  const uint64_t section_offset = out.size();
  out += section;
  while (out.size() % kModelStoreAlignment != 0) out.push_back('\0');
  const uint64_t dir_offset = out.size();
  std::string directory;
  MstorePutVarint64(&directory, 2);
  directory += "db";
  AppendLe64(&directory, section_offset);
  AppendLe64(&directory, section.size());
  AppendLe32(&directory, Crc32c::Of(section));
  out += directory;
  AppendLe32(&out, Crc32c::Of(directory));
  std::string header;
  header.append(kModelStoreMagic, kModelStoreMagicSize);
  AppendLe32(&header, kModelStoreVersion);
  AppendLe32(&header, 0);
  AppendLe64(&header, 1);
  AppendLe64(&header, dir_offset);
  AppendLe64(&header, directory.size());
  AppendLe32(&header, Crc32c::Of(header));
  out.replace(0, kModelStoreHeaderSize, header);

  EXPECT_EQ(OpenImage(out, "unsorted").code(), StatusCode::kCorruption);
  // Without verify the walk is skipped; the open may succeed, but
  // lookups stay safe (checked implicitly by asan).
  Status no_verify = OpenImage(out, "unsorted_nv", /*verify=*/false);
  EXPECT_TRUE(no_verify.ok() ||
              no_verify.code() == StatusCode::kCorruption);
}

}  // namespace
}  // namespace qbs

// End-to-end integration tests: build several databases, learn their
// language models by query-based sampling, and use the learned models for
// database selection, summarization, and query expansion — the complete
// pipeline the paper proposes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "expansion/cooccurrence.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "sampling/sampler.h"
#include "selection/db_selection.h"
#include "selection/eval.h"
#include "starts/starts.h"
#include "summarize/summarizer.h"

namespace qbs {
namespace {

// A federation of topically distinct databases, built once for the suite.
class FederationTest : public ::testing::Test {
 protected:
  static constexpr size_t kNumDbs = 4;

  static void SetUpTestSuite() {
    engines_ = new std::vector<std::unique_ptr<SearchEngine>>();
    for (size_t i = 0; i < kNumDbs; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "fed-" + std::to_string(i);
      spec.num_docs = 500;
      spec.vocab_size = 50'000;
      spec.num_topics = 3;
      spec.topic_vocab_size = 400;
      spec.topic_mix = 0.5;
      // Distinct seeds give each database distinct topic vocabularies.
      spec.seed = 9000 + i * 31;
      auto engine = BuildSyntheticEngine(spec);
      ASSERT_TRUE(engine.ok());
      engines_->push_back(std::move(*engine));
    }
  }

  static void TearDownTestSuite() {
    delete engines_;
    engines_ = nullptr;
  }

  // Samples database i and returns the result.
  SamplingResult Sample(size_t i, size_t max_docs,
                        bool collect_docs = false) {
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = max_docs;
    opts.collect_documents = collect_docs;
    opts.seed = 100 + i;
    LanguageModel actual = (*engines_)[i]->ActualLanguageModel();
    Rng rng(55 + i);
    auto initial = RandomEligibleTerm(actual, TermFilter{}, rng);
    EXPECT_TRUE(initial.has_value());
    opts.initial_term = *initial;
    auto result = QueryBasedSampler((*engines_)[i].get(), opts).Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  static std::vector<std::unique_ptr<SearchEngine>>* engines_;
};

std::vector<std::unique_ptr<SearchEngine>>* FederationTest::engines_ = nullptr;

TEST_F(FederationTest, LearnedModelsAreAccurate) {
  for (size_t i = 0; i < kNumDbs; ++i) {
    SamplingResult r = Sample(i, 200);
    LanguageModel actual = (*engines_)[i]->ActualLanguageModel();
    LmComparison cmp = CompareLanguageModels(r.learned_stemmed, actual);
    EXPECT_GT(cmp.ctf_ratio, 0.65) << "db " << i;
    EXPECT_GT(cmp.spearman_df, 0.4) << "db " << i;
    EXPECT_GT(cmp.common_terms, 200u) << "db " << i;
  }
}

TEST_F(FederationTest, SelectionFromLearnedModelsTracksActual) {
  // Build both collections.
  DatabaseCollection actual_dbs, learned_dbs;
  std::vector<LanguageModel> actuals;
  for (size_t i = 0; i < kNumDbs; ++i) {
    LanguageModel actual = (*engines_)[i]->ActualLanguageModel();
    actuals.push_back(actual);
    SamplingResult r = Sample(i, 200);
    LanguageModel learned = r.learned_stemmed.WithoutStopwords(
        StopwordList::DefaultStemmed());
    actual_dbs.Add((*engines_)[i]->name(), std::move(actual));
    learned_dbs.Add((*engines_)[i]->name(), std::move(learned));
  }

  // Probe queries: frequent terms of each database that are *distinctive*
  // (not carried by the shared background distribution), since selection
  // among near-identical databases is a coin flip for any ranker.
  std::vector<std::vector<std::string>> queries;
  for (size_t i = 0; i < kNumDbs; ++i) {
    size_t taken = 0;
    for (const auto& [term, score] :
         actuals[i].RankedTerms(TermMetric::kCtf, 60)) {
      bool distinctive = true;
      for (size_t j = 0; j < kNumDbs && distinctive; ++j) {
        if (j == i) continue;
        const TermStats* other = actuals[j].Find(term);
        if (other != nullptr && other->ctf * 4 > score) distinctive = false;
      }
      if (distinctive) {
        queries.push_back({term});
        if (++taken == 5) break;
      }
    }
  }
  ASSERT_GE(queries.size(), kNumDbs * 3);

  CoriRanker actual_ranker(&actual_dbs);
  CoriRanker learned_ranker(&learned_dbs);
  RankingAgreement agree =
      MeanAgreement(actual_ranker, learned_ranker, queries, 2);
  EXPECT_GT(agree.spearman, 0.4);
  EXPECT_GT(agree.top_1_match, 0.7);
}

TEST_F(FederationTest, TopicalQueriesSelectTheRightLearnedDatabase) {
  DatabaseCollection learned_dbs;
  std::vector<LanguageModel> actuals;
  for (size_t i = 0; i < kNumDbs; ++i) {
    actuals.push_back((*engines_)[i]->ActualLanguageModel());
    SamplingResult r = Sample(i, 200);
    learned_dbs.Add(
        (*engines_)[i]->name(),
        r.learned_stemmed.WithoutStopwords(StopwordList::DefaultStemmed()));
  }
  CoriRanker ranker(&learned_dbs);
  // For each database, query its most frequent distinctive content term:
  // the learned-model ranking should place that database first for most.
  size_t correct = 0;
  for (size_t i = 0; i < kNumDbs; ++i) {
    // Pick the top ctf term that is NOT frequent in the other databases.
    std::string probe;
    for (const auto& [term, score] :
         actuals[i].RankedTerms(TermMetric::kCtf, 50)) {
      bool distinctive = true;
      for (size_t j = 0; j < kNumDbs && distinctive; ++j) {
        if (j == i) continue;
        const TermStats* other = actuals[j].Find(term);
        if (other != nullptr && other->ctf * 4 > score) distinctive = false;
      }
      if (distinctive) {
        probe = term;
        break;
      }
    }
    ASSERT_FALSE(probe.empty()) << "no distinctive term for db " << i;
    auto ranking = ranker.Rank({probe});
    if (ranking[0].db_name == (*engines_)[i]->name()) ++correct;
  }
  EXPECT_GE(correct, kNumDbs - 1);
}

TEST_F(FederationTest, UnionOfSamplesSupportsExpansion) {
  CooccurrenceModel cooc;
  for (size_t i = 0; i < kNumDbs; ++i) {
    SamplingResult r = Sample(i, 100, /*collect_docs=*/true);
    for (const auto& text : r.sampled_documents) cooc.AddDocument(text);
  }
  EXPECT_EQ(cooc.num_docs(), kNumDbs * 100);
  // A frequent content term should have meaningful associates.
  LanguageModel actual0 = (*engines_)[0]->ActualLanguageModel();
  auto top = actual0.RankedTerms(TermMetric::kCtf, 1);
  ASSERT_FALSE(top.empty());
  QueryExpander expander(&cooc);
  auto expansion = expander.ExpansionTerms({top[0].first}, 5);
  EXPECT_FALSE(expansion.empty());
}

TEST_F(FederationTest, SummariesSurfaceFrequentContentTerms) {
  SamplingResult r = Sample(0, 150);
  DatabaseSummary summary =
      SummarizeDatabase((*engines_)[0]->name(), r.learned);
  ASSERT_GE(summary.terms.size(), 10u);
  // Every summarized term must truly exist in the database (no
  // hallucinated vocabulary — it came from real sampled documents).
  LanguageModel actual = (*engines_)[0]->ActualLanguageModel();
  LanguageModel learned_stemmed = r.learned_stemmed;
  for (const auto& [term, score] : summary.terms) {
    EXPECT_TRUE(r.learned.Contains(term)) << term;
  }
}

TEST_F(FederationTest, SamplingBeatsMisrepresentedCooperativeExport) {
  // A spamming database exports inflated/injected statistics; the sampled
  // model of the same database stays faithful.
  MisrepresentationOptions lie;
  lie.injected_terms = {"jackpot", "casino", "lottery"};
  lie.injected_df = 400;
  lie.injected_ctf = 9000;
  MisrepresentingSource liar((*engines_)[0].get(), lie);
  auto exported = liar.ExportLanguageModel();
  ASSERT_TRUE(exported.ok());
  EXPECT_TRUE(exported->model.Contains("casino"));

  SamplingResult sampled = Sample(0, 150);
  EXPECT_FALSE(sampled.learned.Contains("casino"));
  EXPECT_FALSE(sampled.learned_stemmed.Contains("casino"));
}

TEST_F(FederationTest, SamplingWorksWhereCooperationRefused) {
  RefusingSource legacy("fed-0");
  EXPECT_FALSE(legacy.ExportLanguageModel().ok());
  SamplingResult sampled = Sample(0, 50);
  EXPECT_EQ(sampled.documents_examined, 50u);
  EXPECT_GT(sampled.learned.vocabulary_size(), 100u);
}

}  // namespace
}  // namespace qbs

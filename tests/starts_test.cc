// Tests for the cooperative STARTS-style exchange and its failure modes.
#include <gtest/gtest.h>

#include <string>

#include "starts/starts.h"

namespace qbs {
namespace {

std::unique_ptr<SearchEngine> SmallEngine(const std::string& name,
                                          SearchEngineOptions opts = {}) {
  auto engine = std::make_unique<SearchEngine>(name, std::move(opts));
  EXPECT_TRUE(
      engine->AddDocument("d1", "databases store many documents").ok());
  EXPECT_TRUE(
      engine->AddDocument("d2", "document retrieval ranks databases").ok());
  return engine;
}

TEST(HonestSourceTest, ExportsTrueStatistics) {
  auto engine = SmallEngine("honest");
  HonestSource source(engine.get());
  EXPECT_EQ(source.name(), "honest");
  auto result = source.ExportLanguageModel();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db_name, "honest");
  EXPECT_EQ(result->num_docs, 2u);
  EXPECT_TRUE(result->stemmed);
  EXPECT_TRUE(result->stopwords_removed);
  EXPECT_TRUE(result->case_folded);
  // Matches the actual model exactly.
  const TermStats* s = result->model.Find("databas");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->df, 2u);
  EXPECT_EQ(s->ctf, 2u);
}

TEST(RefusingSourceTest, AlwaysFails) {
  RefusingSource source("legacy-db");
  EXPECT_EQ(source.name(), "legacy-db");
  auto result = source.ExportLanguageModel();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnimplemented());
}

TEST(MisrepresentingSourceTest, InflatesFrequencies) {
  auto engine = SmallEngine("liar");
  MisrepresentationOptions opts;
  opts.frequency_inflation = 10.0;
  MisrepresentingSource source(engine.get(), opts);
  auto result = source.ExportLanguageModel();
  ASSERT_TRUE(result.ok());
  const TermStats* s = result->model.Find("databas");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->df, 20u);   // true df 2, inflated 10x
  EXPECT_EQ(s->ctf, 20u);
}

TEST(MisrepresentingSourceTest, InjectsAbsentTerms) {
  auto engine = SmallEngine("spammer");
  MisrepresentationOptions opts;
  opts.injected_terms = {"viagra", "casino"};
  opts.injected_df = 500;
  opts.injected_ctf = 5000;
  MisrepresentingSource source(engine.get(), opts);
  auto result = source.ExportLanguageModel();
  ASSERT_TRUE(result.ok());
  const TermStats* s = result->model.Find("casino");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->df, 500u);
  EXPECT_EQ(s->ctf, 5000u);
  // The engine itself contains no such document: a query-based sample
  // could never have learned this term.
  EXPECT_FALSE(engine->ActualLanguageModel().Contains("casino"));
}

TEST(MisrepresentingSourceTest, NoOpOptionsExportTruth) {
  auto engine = SmallEngine("accidentally-honest");
  MisrepresentingSource source(engine.get(), MisrepresentationOptions{});
  auto result = source.ExportLanguageModel();
  ASSERT_TRUE(result.ok());
  LanguageModel truth = engine->ActualLanguageModel();
  EXPECT_EQ(result->model.vocabulary_size(), truth.vocabulary_size());
  EXPECT_EQ(result->model.Find("databas")->df, truth.Find("databas")->df);
}

TEST(TermSpaceOverlapTest, IdenticalConventionsOverlapFully) {
  auto a = SmallEngine("a");
  auto b = SmallEngine("b");
  double overlap = TermSpaceOverlap(a->ActualLanguageModel(),
                                    b->ActualLanguageModel());
  EXPECT_DOUBLE_EQ(overlap, 1.0);
}

TEST(TermSpaceOverlapTest, MismatchedStemmingShrinksOverlap) {
  // The paper's incomparability problem (§2.2): one database stems, the
  // other does not — their exported vocabularies barely align.
  auto stemmed = SmallEngine("stemmed");
  SearchEngineOptions raw_opts;
  AnalyzerOptions aopts;
  aopts.stem = false;
  aopts.remove_stopwords = false;
  raw_opts.analyzer = Analyzer(aopts);
  auto raw = SmallEngine("raw", raw_opts);

  double overlap = TermSpaceOverlap(raw->ActualLanguageModel(),
                                    stemmed->ActualLanguageModel());
  EXPECT_LT(overlap, 0.6);  // most of raw's mass ("the", "databases", ...)
                            // is invisible to the stemmed term space
}

TEST(TermSpaceOverlapTest, EmptyModelConventions) {
  LanguageModel empty;
  LanguageModel nonempty;
  nonempty.AddTerm("x", 1, 1);
  EXPECT_DOUBLE_EQ(TermSpaceOverlap(empty, nonempty), 1.0);
  EXPECT_DOUBLE_EQ(TermSpaceOverlap(nonempty, empty), 0.0);
}

TEST(CooperativeSourceTest, PolymorphicCollection) {
  auto engine = SmallEngine("db1");
  std::vector<std::unique_ptr<CooperativeSource>> sources;
  sources.push_back(std::make_unique<HonestSource>(engine.get()));
  sources.push_back(std::make_unique<RefusingSource>("db2"));
  size_t exported = 0, refused = 0;
  for (auto& source : sources) {
    auto result = source->ExportLanguageModel();
    result.ok() ? ++exported : ++refused;
  }
  EXPECT_EQ(exported, 1u);
  EXPECT_EQ(refused, 1u);
}

}  // namespace
}  // namespace qbs

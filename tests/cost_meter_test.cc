// Tests for CostMeter, including the paper's §9 resource-requirements
// claim measured end to end on a sampling run.
#include <gtest/gtest.h>

#include <memory>

#include "corpus/synthetic.h"
#include "sampling/cost_meter.h"
#include "sampling/sampler.h"

namespace qbs {
namespace {

class CostMeterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "costdb";
    spec.num_docs = 1'000;
    spec.vocab_size = 40'000;
    spec.num_topics = 4;
    spec.seed = 60601;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static SearchEngine* engine_;
};

SearchEngine* CostMeterTest::engine_ = nullptr;

TEST_F(CostMeterTest, CountsQueriesAndHits) {
  CostMeter meter(engine_);
  LanguageModel actual = engine_->ActualLanguageModel();
  auto top = actual.RankedTerms(TermMetric::kCtf, 3);
  uint64_t expected_query_bytes = 0;
  uint64_t expected_hits = 0;
  for (const auto& [term, score] : top) {
    auto hits = meter.RunQuery(term, 4);
    ASSERT_TRUE(hits.ok());
    expected_query_bytes += term.size();
    expected_hits += hits->size();
  }
  EXPECT_EQ(meter.costs().queries, 3u);
  EXPECT_EQ(meter.costs().query_bytes, expected_query_bytes);
  EXPECT_EQ(meter.costs().hits_returned, expected_hits);
  EXPECT_EQ(meter.costs().documents_fetched, 0u);
  EXPECT_EQ(meter.costs().errors, 0u);
}

TEST_F(CostMeterTest, CountsFetchedBytes) {
  CostMeter meter(engine_);
  LanguageModel actual = engine_->ActualLanguageModel();
  auto top = actual.RankedTerms(TermMetric::kCtf, 1);
  auto hits = meter.RunQuery(top[0].first, 2);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  uint64_t bytes = 0;
  for (const auto& hit : *hits) {
    auto text = meter.FetchDocument(hit.handle);
    ASSERT_TRUE(text.ok());
    bytes += text->size();
  }
  EXPECT_EQ(meter.costs().documents_fetched, hits->size());
  EXPECT_EQ(meter.costs().document_bytes, bytes);
  EXPECT_EQ(meter.costs().total_bytes(),
            bytes + meter.costs().query_bytes);
}

TEST_F(CostMeterTest, CountsErrors) {
  CostMeter meter(engine_);
  EXPECT_FALSE(meter.FetchDocument("no-such-handle").ok());
  EXPECT_EQ(meter.costs().errors, 1u);
  EXPECT_EQ(meter.costs().documents_fetched, 0u);
}

TEST_F(CostMeterTest, ResetClearsCounters) {
  CostMeter meter(engine_);
  (void)meter.RunQuery("anything", 1);
  EXPECT_GT(meter.costs().queries, 0u);
  meter.Reset();
  EXPECT_EQ(meter.costs().queries, 0u);
  EXPECT_EQ(meter.costs().total_bytes(), 0u);
}

// The paper's §9 claim, measured: learning a model from 300 documents
// costs ~100 one-term queries and well under a megabyte of transfer on
// abstracts-sized documents.
TEST_F(CostMeterTest, SamplingResourceRequirementsAreLow) {
  CostMeter meter(engine_);
  SamplerOptions opts;
  opts.docs_per_query = 4;
  opts.stopping.max_documents = 300;
  LanguageModel actual = engine_->ActualLanguageModel();
  Rng rng(5);
  opts.initial_term = *RandomEligibleTerm(actual, opts.filter, rng);
  auto result = QueryBasedSampler(&meter, opts).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->documents_examined, 300u);

  const InteractionCosts& costs = meter.costs();
  EXPECT_EQ(costs.queries, result->queries_run);
  EXPECT_EQ(costs.documents_fetched, 300u);
  // Roughly one hundred single-term queries (paper §9) — generous bound.
  EXPECT_LT(costs.queries, 400u);
  // Network traffic: well under a megabyte for a 300-document sample of
  // abstract-sized documents.
  EXPECT_LT(costs.total_bytes(), 1'000'000u);
  EXPECT_GT(costs.document_bytes, 0u);
}

}  // namespace
}  // namespace qbs

// Tests for the binary model store: writer packing, zero-copy reader
// round trips, and the raw varint coding shared by both.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "lm/language_model.h"
#include "mstore/format.h"
#include "mstore/mapped_model_store.h"
#include "mstore/model_store_writer.h"
#include "storage/file_io.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  fs::path p = fs::temp_directory_path() /
               ("qbs_mstore_test_" + tag + "_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                ".qms");
  fs::remove(p);
  return p.string();
}

LanguageModel SmallModel() {
  LanguageModel lm;
  lm.AddTerm("apple", 3, 7);
  lm.AddTerm("banana", 1, 1);
  lm.AddTerm("cherry", 10, 42);
  lm.set_num_docs(12);
  return lm;
}

// Writes `models` through the writer and reopens the file mapped.
std::shared_ptr<const MappedModelStore> PackAndOpen(
    const std::vector<std::pair<std::string, const LanguageModel*>>& models,
    uint32_t block_size = kModelStoreDefaultBlockSize) {
  ModelStoreWriter::Options opts;
  opts.block_size = block_size;
  ModelStoreWriter writer(opts);
  for (const auto& [name, model] : models) {
    EXPECT_TRUE(writer.Add(name, *model).ok());
  }
  std::string path = TempPath("pack");
  EXPECT_TRUE(writer.WriteToFile(path).ok());
  auto store = MappedModelStore::Open(path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  fs::remove(path);  // the mapping outlives the directory entry
  return *store;
}

// --- varint coding --------------------------------------------------------

TEST(MstoreVarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 35) - 1,
                             1ull << 35,
                             UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    MstorePutVarint64(&buf, v);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    uint64_t decoded = 0;
    ASSERT_EQ(MstoreGetVarint64(p, p + buf.size(), &decoded), buf.size())
        << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(MstoreVarintTest, RejectsTruncatedInput) {
  std::string buf;
  MstorePutVarint64(&buf, 1ull << 40);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  for (size_t len = 0; len < buf.size(); ++len) {
    uint64_t v = 0;
    EXPECT_EQ(MstoreGetVarint64(p, p + len, &v), 0u) << len;
  }
}

TEST(MstoreVarintTest, RejectsOverlongEncodings) {
  uint64_t v = 0;
  // 0 encoded in two bytes (0x80 0x00) instead of one.
  const uint8_t overlong_zero[] = {0x80, 0x00};
  EXPECT_EQ(MstoreGetVarint64(overlong_zero, overlong_zero + 2, &v), 0u);
  // 1 zero-padded into two bytes.
  const uint8_t padded_one[] = {0x81, 0x00};
  EXPECT_EQ(MstoreGetVarint64(padded_one, padded_one + 2, &v), 0u);
  // Eleven continuation bytes: longer than any 64-bit varint.
  const uint8_t eleven[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                            0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  EXPECT_EQ(MstoreGetVarint64(eleven, eleven + sizeof(eleven), &v), 0u);
  // Tenth byte contributing more than the top bit (overflows 64 bits).
  const uint8_t overflow[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                              0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  EXPECT_EQ(MstoreGetVarint64(overflow, overflow + sizeof(overflow), &v),
            0u);
}

// --- writer ---------------------------------------------------------------

TEST(ModelStoreWriterTest, RejectsEmptyAndDuplicateNames) {
  LanguageModel lm = SmallModel();
  ModelStoreWriter writer;
  EXPECT_FALSE(writer.Add("", lm).ok());
  EXPECT_TRUE(writer.Add("a", lm).ok());
  EXPECT_FALSE(writer.Add("a", lm).ok());
  EXPECT_EQ(writer.num_models(), 1u);
}

TEST(ModelStoreWriterTest, RejectsZeroBlockSize) {
  ModelStoreWriter::Options opts;
  opts.block_size = 0;
  ModelStoreWriter writer(opts);
  LanguageModel lm = SmallModel();
  EXPECT_EQ(writer.Add("a", lm).code(), StatusCode::kInvalidArgument);
}

TEST(ModelStoreWriterTest, SerializeIsDeterministic) {
  LanguageModel lm = SmallModel();
  ModelStoreWriter a, b;
  ASSERT_TRUE(a.Add("db", lm).ok());
  ASSERT_TRUE(b.Add("db", lm).ok());
  auto image_a = a.Serialize();
  auto image_b = b.Serialize();
  ASSERT_TRUE(image_a.ok());
  ASSERT_TRUE(image_b.ok());
  EXPECT_EQ(*image_a, *image_b);
}

// --- mapped reader round trips -------------------------------------------

TEST(MappedModelStoreTest, OpenMissingFileIsNotFound) {
  auto store = MappedModelStore::Open(TempPath("missing"));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
}

TEST(MappedModelStoreTest, RoundTripsEmptyStore) {
  auto store = PackAndOpen({});
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->num_models(), 0u);
  EXPECT_EQ(store->version(), kModelStoreVersion);
}

TEST(MappedModelStoreTest, RoundTripsEmptyModel) {
  LanguageModel empty;
  auto store = PackAndOpen({{"empty", &empty}});
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->num_models(), 1u);
  const MappedLanguageModel& m = store->model(0);
  EXPECT_EQ(m.vocabulary_size(), 0u);
  EXPECT_EQ(m.total_term_count(), 0u);
  EXPECT_EQ(m.num_docs(), 0u);
  TermStats s;
  EXPECT_FALSE(m.FindStats("anything", &s));
}

TEST(MappedModelStoreTest, RoundTripsEveryTermAndCount) {
  LanguageModel lm = SmallModel();
  auto store = PackAndOpen({{"db", &lm}});
  ASSERT_NE(store, nullptr);
  const MappedLanguageModel& m = store->model(0);
  EXPECT_EQ(m.vocabulary_size(), lm.vocabulary_size());
  EXPECT_EQ(m.total_term_count(), lm.total_term_count());
  EXPECT_EQ(m.num_docs(), lm.num_docs());
  lm.ForEach([&](const std::string& term, const TermStats& expected) {
    TermStats got;
    ASSERT_TRUE(m.FindStats(term, &got)) << term;
    EXPECT_EQ(got.df, expected.df) << term;
    EXPECT_EQ(got.ctf, expected.ctf) << term;
  });
  TermStats s;
  EXPECT_FALSE(m.FindStats("aardvark", &s));  // before the first term
  EXPECT_FALSE(m.FindStats("applf", &s));     // between terms
  EXPECT_FALSE(m.FindStats("zebra", &s));     // after the last term
  EXPECT_FALSE(m.FindStats("appl", &s));      // proper prefix of a term
  EXPECT_FALSE(m.FindStats("apples", &s));    // extension of a term
}

TEST(MappedModelStoreTest, ForEachTermIsSortedAndComplete) {
  LanguageModel lm;
  for (int i = 0; i < 100; ++i) {
    lm.AddTerm("term" + std::to_string(i), static_cast<uint64_t>(i + 1),
               static_cast<uint64_t>(2 * i + 1));
  }
  auto store = PackAndOpen({{"db", &lm}}, /*block_size=*/7);
  ASSERT_NE(store, nullptr);
  std::vector<std::string> seen;
  store->model(0).ForEachTerm(
      [&](std::string_view term, const TermStats& s) {
        seen.emplace_back(term);
        TermStats expected;
        ASSERT_TRUE(lm.FindStats(term, &expected));
        EXPECT_EQ(s.df, expected.df);
        EXPECT_EQ(s.ctf, expected.ctf);
      });
  ASSERT_EQ(seen.size(), lm.vocabulary_size());
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST(MappedModelStoreTest, LookupWorksAtEveryBlockBoundary) {
  // block_size 4 with 19 terms: full blocks plus a ragged tail.
  LanguageModel lm;
  std::vector<std::string> terms;
  for (int i = 0; i < 19; ++i) {
    std::string t = "k" + std::string(1 + i % 3, static_cast<char>('a' + i));
    lm.AddTerm(t, static_cast<uint64_t>(i + 1), static_cast<uint64_t>(i + 5));
    terms.push_back(t);
  }
  auto store = PackAndOpen({{"db", &lm}}, /*block_size=*/4);
  ASSERT_NE(store, nullptr);
  const MappedLanguageModel& m = store->model(0);
  for (const std::string& t : terms) {
    TermStats got, expected;
    ASSERT_TRUE(lm.FindStats(t, &expected));
    ASSERT_TRUE(m.FindStats(t, &got)) << t;
    EXPECT_EQ(got.df, expected.df);
    EXPECT_EQ(got.ctf, expected.ctf);
  }
}

TEST(MappedModelStoreTest, HandlesBinaryTermsAndExtremeCounts) {
  LanguageModel lm;
  lm.AddTerm(std::string("\x00\x01", 2), 1, 1);
  lm.AddTerm(std::string("\xff\xfe", 2), UINT64_MAX, UINT64_MAX);
  lm.AddTerm("middle", 0, 0);  // zero-df/ctf terms survive the round trip
  auto store = PackAndOpen({{"db", &lm}}, /*block_size=*/2);
  ASSERT_NE(store, nullptr);
  const MappedLanguageModel& m = store->model(0);
  TermStats s;
  ASSERT_TRUE(m.FindStats(std::string_view("\x00\x01", 2), &s));
  EXPECT_EQ(s.df, 1u);
  ASSERT_TRUE(m.FindStats(std::string_view("\xff\xfe", 2), &s));
  EXPECT_EQ(s.df, UINT64_MAX);
  EXPECT_EQ(s.ctf, UINT64_MAX);
  ASSERT_TRUE(m.FindStats("middle", &s));
  EXPECT_EQ(s.df, 0u);
  EXPECT_EQ(s.ctf, 0u);
}

TEST(MappedModelStoreTest, MultipleModelsAndIndexOf) {
  LanguageModel a = SmallModel();
  LanguageModel b;
  b.AddTerm("zebra", 2, 3);
  b.set_num_docs(1);
  auto store = PackAndOpen({{"alpha", &a}, {"beta", &b}});
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->num_models(), 2u);
  auto ia = store->IndexOf("alpha");
  auto ib = store->IndexOf("beta");
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  EXPECT_EQ(store->name(*ia), "alpha");
  EXPECT_EQ(store->name(*ib), "beta");
  EXPECT_EQ(store->model(*ib).num_docs(), 1u);
  EXPECT_EQ(store->IndexOf("gamma").status().code(), StatusCode::kNotFound);
}

TEST(MappedModelStoreTest, ViewKeepsStoreAliveAfterHandleDrop) {
  LanguageModel lm = SmallModel();
  std::shared_ptr<const LanguageModelView> view;
  {
    auto store = PackAndOpen({{"db", &lm}});
    ASSERT_NE(store, nullptr);
    view = MappedModelStore::ModelView(store, 0);
  }
  // The store handle is gone; the aliasing view must keep the mapping.
  TermStats s;
  ASSERT_TRUE(view->FindStats("apple", &s));
  EXPECT_EQ(s.df, 3u);
}

TEST(MappedModelStoreTest, OpenWithoutVerifyStillRoundTrips) {
  LanguageModel lm = SmallModel();
  ModelStoreWriter writer;
  ASSERT_TRUE(writer.Add("db", lm).ok());
  std::string path = TempPath("noverify");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  MappedModelStore::OpenOptions opts;
  opts.verify = false;
  auto store = MappedModelStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  TermStats s;
  ASSERT_TRUE((*store)->model(0).FindStats("cherry", &s));
  EXPECT_EQ(s.ctf, 42u);
  fs::remove(path);
}

TEST(MappedModelStoreTest, CollectionFromStoreMatchesHeapCollection) {
  LanguageModel a = SmallModel();
  LanguageModel b;
  b.AddTerm("apple", 5, 6);
  b.set_num_docs(3);
  auto store = PackAndOpen({{"a", &a}, {"b", &b}});
  ASSERT_NE(store, nullptr);
  DatabaseCollection mapped = CollectionFromStore(store);
  DatabaseCollection heap;
  heap.Add("a", a);
  heap.Add("b", b);
  ASSERT_EQ(mapped.size(), heap.size());
  EXPECT_EQ(mapped.DatabasesContaining("apple"),
            heap.DatabasesContaining("apple"));
  EXPECT_EQ(mapped.DatabasesContaining("zebra"),
            heap.DatabasesContaining("zebra"));
  EXPECT_DOUBLE_EQ(mapped.AvgCollectionSize(), heap.AvgCollectionSize());
}

}  // namespace
}  // namespace qbs

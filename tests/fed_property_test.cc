// Property test for the scatter-gather algebra, in-process (no
// sockets): for random shard counts, random database assignments,
// random models, and random queries, running the federation's own
// two-phase protocol over per-shard SelectionBrokers —
// CollectStats on each shard, MergeCollectionStats, SelectWith on each
// shard, concatenate, re-sort (score descending, name ascending), trim
// — must reproduce a single broker over the union collection bit for
// bit, for all four rankers, including tie-break order.
//
// This is the mathematical core the wire-level suite (fed_test.cc)
// rides on; keeping it in-process lets it run many trials per second.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "broker/model_registry.h"
#include "broker/selection_broker.h"
#include "selection/db_selection.h"
#include "text/analyzer.h"
#include "util/random.h"

namespace qbs {
namespace {

std::vector<std::string> StemmedVocab() {
  static const std::vector<std::string>* words = new std::vector<std::string>{
      "recipe",  "cooking", "quantum",  "galaxy", "neural",  "network",
      "protein", "genome",  "market",   "stock",  "symphony", "violin",
      "planet",  "enzyme",  "electron", "poetry"};
  Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> stems;
  for (const std::string& word : *words) {
    for (std::string& t : analyzer.Analyze(word)) stems.push_back(std::move(t));
  }
  return stems;
}

LanguageModel RandomModel(Rng& rng, const std::vector<std::string>& vocab) {
  LanguageModel model;
  uint64_t max_df = 1;
  for (const std::string& term : vocab) {
    // ~1 in 4 terms absent from this database, so cf varies by db.
    if (rng() % 4 == 0) continue;
    uint64_t df = 1 + rng() % 60;
    uint64_t ctf = df + rng() % 300;
    model.AddTerm(term, df, ctf);
    max_df = std::max(max_df, df);
  }
  model.set_num_docs(max_df + rng() % 40 + 1);
  return model;
}

std::string RandomQuery(Rng& rng) {
  // Raw words; the broker analyzes them. One word in six is unknown to
  // every model, exercising zero-stat terms.
  static const std::vector<std::string>* words = new std::vector<std::string>{
      "recipe",  "cooking", "quantum",  "galaxy", "neural",  "network",
      "protein", "genome",  "market",   "stock",  "symphony", "violin",
      "planet",  "enzyme",  "electron", "poetry"};
  size_t len = 1 + rng() % 4;
  std::string query;
  for (size_t i = 0; i < len; ++i) {
    if (!query.empty()) query += ' ';
    if (rng() % 6 == 0) {
      query += "zyzzyva";
    } else {
      query += (*words)[rng() % words->size()];
    }
  }
  return query;
}

TEST(FedPropertyTest, TwoPhaseMergeEqualsUnionBrokerOnRandomShardings) {
  const std::vector<std::string> vocab = StemmedVocab();
  Rng rng(20260809);

  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const size_t num_shards = 1 + rng() % 5;
    const size_t num_dbs = num_shards + rng() % 10;

    // Build every database once, then deal it to a random shard; the
    // union collection holds the identical LanguageModel objects.
    std::vector<std::string> names;
    std::vector<LanguageModel> models;
    for (size_t i = 0; i < num_dbs; ++i) {
      names.push_back("db-" + std::to_string(trial) + "-" +
                      std::to_string(i));
      models.push_back(RandomModel(rng, vocab));
    }
    std::vector<DatabaseCollection> shard_dbs(num_shards);
    DatabaseCollection union_dbs;
    for (size_t i = 0; i < num_dbs; ++i) {
      shard_dbs[rng() % num_shards].Add(names[i], models[i]);
      union_dbs.Add(names[i], models[i]);
    }

    std::vector<std::unique_ptr<ModelRegistry>> registries;
    std::vector<std::unique_ptr<SelectionBroker>> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      registries.push_back(std::make_unique<ModelRegistry>());
      registries.back()->Publish(std::move(shard_dbs[s]));
      shards.push_back(
          std::make_unique<SelectionBroker>(registries.back().get()));
    }
    ModelRegistry union_registry;
    union_registry.Publish(std::move(union_dbs));
    SelectionBroker union_broker(&union_registry);

    for (int q = 0; q < 3; ++q) {
      const std::string query = RandomQuery(rng);
      const size_t top_k = rng() % 2 == 0 ? 0 : 1 + rng() % num_dbs;

      // Phase 1: gather per-shard stats, merge in shard order.
      CollectionStats merged;
      std::vector<uint64_t> epochs;
      for (auto& shard : shards) {
        auto stats = shard->CollectStats(query);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        epochs.push_back(stats->epoch);
        MergeCollectionStats(merged, stats->stats);
      }

      for (const std::string& ranker : KnownRankerNames()) {
        SCOPED_TRACE("query='" + query + "' ranker=" + ranker + " top_k=" +
                     std::to_string(top_k));
        // Phase 2: each shard ranks its own databases with the
        // federation-wide stats; merge = concat + total-order sort.
        std::vector<DatabaseScore> gathered;
        for (size_t s = 0; s < shards.size(); ++s) {
          auto part = shards[s]->SelectWith(query, ranker, /*top_k=*/0,
                                            epochs[s], merged);
          ASSERT_TRUE(part.ok()) << part.status().ToString();
          gathered.insert(gathered.end(), part->scores.begin(),
                          part->scores.end());
        }
        std::sort(gathered.begin(), gathered.end(),
                  [](const DatabaseScore& a, const DatabaseScore& b) {
                    if (a.score != b.score) return a.score > b.score;
                    return a.db_name < b.db_name;
                  });
        if (top_k != 0 && gathered.size() > top_k) gathered.resize(top_k);

        auto want = union_broker.Select(query, ranker, top_k);
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        ASSERT_EQ(gathered.size(), want->scores.size());
        for (size_t i = 0; i < gathered.size(); ++i) {
          EXPECT_EQ(gathered[i].db_name, want->scores[i].db_name)
              << "rank " << i;
          EXPECT_EQ(gathered[i].score, want->scores[i].score)
              << "rank " << i << " (" << gathered[i].db_name << ")";
        }
      }
    }
  }
}

// Merging shard statistics in any order yields the same aggregate —
// the property that makes the phase-1 merge shard-order-independent.
TEST(FedPropertyTest, StatsMergeIsOrderIndependent) {
  const std::vector<std::string> vocab = StemmedVocab();
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CollectionStats> parts;
    const std::vector<std::string> terms(vocab.begin(), vocab.begin() + 4);
    for (int p = 0; p < 5; ++p) {
      DatabaseCollection dbs;
      for (int d = 0; d < 3; ++d) {
        dbs.Add("p" + std::to_string(p) + "d" + std::to_string(d),
                RandomModel(rng, vocab));
      }
      parts.push_back(ComputeCollectionStats(dbs, terms));
    }
    CollectionStats forward;
    for (const auto& p : parts) MergeCollectionStats(forward, p);
    CollectionStats backward;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      MergeCollectionStats(backward, *it);
    }
    EXPECT_EQ(forward.num_databases, backward.num_databases);
    EXPECT_EQ(forward.sum_cw, backward.sum_cw);
    EXPECT_EQ(forward.union_total_terms, backward.union_total_terms);
    ASSERT_EQ(forward.terms.size(), backward.terms.size());
    for (size_t i = 0; i < forward.terms.size(); ++i) {
      EXPECT_EQ(forward.terms[i].cf, backward.terms[i].cf);
      EXPECT_EQ(forward.terms[i].union_ctf, backward.terms[i].union_ctf);
    }
  }
}

}  // namespace
}  // namespace qbs

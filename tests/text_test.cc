// Tests for tokenizer, stopwords, and analyzer.
#include <gtest/gtest.h>

#include <algorithm>

#include "text/analyzer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace qbs {
namespace {

TEST(TokenizerTest, SplitsOnNonAlphanumerics) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Hello, world! foo-bar baz_42");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "Hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foo");
  EXPECT_EQ(tokens[3], "bar");
  EXPECT_EQ(tokens[4], "baz");
  EXPECT_EQ(tokens[5], "42");
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInputs) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  ,.;:!?  \n\t").empty());
}

TEST(TokenizerTest, ElidesInWordApostrophes) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("don't can't o'clock 'quoted'");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "dont");
  EXPECT_EQ(tokens[1], "cant");
  EXPECT_EQ(tokens[2], "oclock");
  EXPECT_EQ(tokens[3], "quoted");
}

TEST(TokenizerTest, ApostropheSplittingWhenElisionDisabled) {
  TokenizerOptions opts;
  opts.elide_apostrophes = false;
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize("don't");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "don");
  EXPECT_EQ(tokens[1], "t");
}

TEST(TokenizerTest, MinLengthFilterDropsShortTokens) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize("a an the cat");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "cat");
}

TEST(TokenizerTest, MaxLengthFilterDropsPathologicalTokens) {
  TokenizerOptions opts;
  opts.max_token_length = 8;
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize("short extraordinarily ok");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "short");
  EXPECT_EQ(tokens[1], "ok");
}

TEST(TokenizerTest, AppendOverloadAccumulates) {
  Tokenizer tok;
  std::vector<std::string> out;
  tok.Tokenize("one two", out);
  tok.Tokenize("three", out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], "three");
}

TEST(TokenizerTest, TokenAtEndOfInputIsFlushed) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("trailing");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "trailing");
}

TEST(StopwordListTest, DefaultContainsClosedClassWords) {
  const StopwordList& sw = StopwordList::Default();
  for (const char* w : {"the", "and", "of", "to", "was", "whereupon"}) {
    EXPECT_TRUE(sw.Contains(w)) << w;
  }
  EXPECT_FALSE(sw.Contains("apple"));
  EXPECT_FALSE(sw.Contains("database"));
  EXPECT_FALSE(sw.Contains(""));
}

TEST(StopwordListTest, DefaultSizeIsComparableToInquerys418) {
  // The paper's databases used INQUERY's 418-word list; ours should be in
  // the same ballpark (the exact list is a substitution, see DESIGN.md).
  size_t n = StopwordList::Default().size();
  EXPECT_GE(n, 350u);
  EXPECT_LE(n, 500u);
}

TEST(StopwordListTest, MinimalIsSmallSubsetStyleList) {
  const StopwordList& sw = StopwordList::Minimal();
  EXPECT_LT(sw.size(), 50u);
  EXPECT_TRUE(sw.Contains("the"));
  EXPECT_FALSE(sw.Contains("would"));  // in Default, not Minimal
}

TEST(StopwordListTest, CustomList) {
  StopwordList sw({"foo", "bar"});
  EXPECT_EQ(sw.size(), 2u);
  EXPECT_TRUE(sw.Contains("foo"));
  EXPECT_FALSE(sw.Contains("baz"));
}

TEST(StopwordListTest, EmptyListContainsNothing) {
  StopwordList sw;
  EXPECT_TRUE(sw.empty());
  EXPECT_FALSE(sw.Contains("the"));
}

TEST(StopwordListTest, DefaultStemmedCoversStemmedForms) {
  const StopwordList& stemmed = StopwordList::DefaultStemmed();
  // Stemmed forms of stopwords that change under Porter.
  EXPECT_TRUE(stemmed.Contains("thei"));  // they
  EXPECT_TRUE(stemmed.Contains("veri"));  // very
  EXPECT_TRUE(stemmed.Contains("onli"));  // only
  // Unstemmed forms are retained too.
  EXPECT_TRUE(stemmed.Contains("they"));
  EXPECT_TRUE(stemmed.Contains("the"));
  // Content words remain out.
  EXPECT_FALSE(stemmed.Contains("databas"));
  EXPECT_GE(stemmed.size(), StopwordList::Default().size());
}

TEST(StopwordListTest, WordsAccessorRoundTrips) {
  StopwordList list({"beta", "alpha", "beta"});
  auto words = list.Words();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "alpha");
  EXPECT_EQ(words[1], "beta");
}

TEST(StopwordListTest, DefaultVectorIsSortedAndUnique) {
  auto v = DefaultStopwordVector();
  EXPECT_EQ(v.size(), StopwordList::Default().size());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(std::adjacent_find(v.begin(), v.end()), v.end());
}

TEST(AnalyzerTest, InqueryLikeStopsAndStems) {
  Analyzer a = Analyzer::InqueryLike();
  auto terms = a.Analyze("The Databases are running QUICKLY");
  // "the" and "are" are stopwords; remaining words stem.
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "databas");
  EXPECT_EQ(terms[1], "run");
  EXPECT_EQ(terms[2], "quickli");
}

TEST(AnalyzerTest, RawKeepsStopwordsAndSuffixes) {
  Analyzer a = Analyzer::Raw();
  auto terms = a.Analyze("The Databases are running");
  ASSERT_EQ(terms.size(), 4u);
  EXPECT_EQ(terms[0], "the");
  EXPECT_EQ(terms[1], "databases");
  EXPECT_EQ(terms[2], "are");
  EXPECT_EQ(terms[3], "running");
}

TEST(AnalyzerTest, CaseFoldingCanBeDisabled) {
  AnalyzerOptions opts;
  opts.lowercase = false;
  opts.remove_stopwords = false;
  opts.stem = false;
  Analyzer a(opts);
  auto terms = a.Analyze("MiXeD Case");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "MiXeD");
  EXPECT_EQ(terms[1], "Case");
}

TEST(AnalyzerTest, CustomStopwordList) {
  StopwordList sw({"custom"});
  AnalyzerOptions opts;
  opts.stopwords = &sw;
  opts.stem = false;
  Analyzer a(opts);
  auto terms = a.Analyze("custom words the survive");
  // Only "custom" is stopped; "the" survives under the custom list.
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "words");
  EXPECT_EQ(terms[1], "the");
  EXPECT_EQ(terms[2], "survive");
}

TEST(AnalyzerTest, StopwordsMatchedAfterLowercasing) {
  Analyzer a = Analyzer::InqueryLike();
  EXPECT_TRUE(a.Analyze("THE The the").empty());
}

TEST(AnalyzerTest, AppendOverload) {
  Analyzer a = Analyzer::Raw();
  std::vector<std::string> out;
  a.Analyze("one", out);
  a.Analyze("two", out);
  ASSERT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace qbs

// Failure-injection tests: the sampler against flaky and hostile databases.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "corpus/synthetic.h"
#include "sampling/sampler.h"
#include "search/text_database.h"

namespace qbs {
namespace {

// Wraps a database and injects failures on a deterministic schedule.
class FlakyDatabase : public TextDatabase {
 public:
  struct FaultPlan {
    /// Every Nth RunQuery fails (0 = never).
    size_t query_failure_period = 0;
    /// Every Nth FetchDocument fails (0 = never).
    size_t fetch_failure_period = 0;
  };

  FlakyDatabase(TextDatabase* inner, FaultPlan plan)
      : inner_(inner), plan_(plan) {}

  std::string name() const override { return inner_->name() + "+flaky"; }

  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t max_results) override {
    ++queries_;
    if (plan_.query_failure_period != 0 &&
        queries_ % plan_.query_failure_period == 0) {
      return Status::IOError("injected query failure");
    }
    return inner_->RunQuery(query, max_results);
  }

  Result<std::string> FetchDocument(std::string_view handle) override {
    ++fetches_;
    if (plan_.fetch_failure_period != 0 &&
        fetches_ % plan_.fetch_failure_period == 0) {
      return Status::IOError("injected fetch failure");
    }
    return inner_->FetchDocument(handle);
  }

  size_t queries() const { return queries_; }
  size_t fetches() const { return fetches_; }

 private:
  TextDatabase* inner_;
  FaultPlan plan_;
  size_t queries_ = 0;
  size_t fetches_ = 0;
};

class SamplerFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "faultdb";
    spec.num_docs = 600;
    spec.vocab_size = 30'000;
    spec.num_topics = 4;
    spec.seed = 424242;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  SamplerOptions BaseOptions(size_t max_docs) {
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = max_docs;
    LanguageModel actual = engine_->ActualLanguageModel();
    Rng rng(5);
    auto term = RandomEligibleTerm(actual, opts.filter, rng);
    EXPECT_TRUE(term.has_value());
    opts.initial_term = *term;
    return opts;
  }

  static SearchEngine* engine_;
};

SearchEngine* SamplerFaultTest::engine_ = nullptr;

TEST_F(SamplerFaultTest, DefaultPropagatesFirstQueryError) {
  FlakyDatabase flaky(engine_, {.query_failure_period = 3});
  auto result = QueryBasedSampler(&flaky, BaseOptions(100)).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(SamplerFaultTest, DefaultPropagatesFirstFetchError) {
  FlakyDatabase flaky(engine_, {.fetch_failure_period = 5});
  auto result = QueryBasedSampler(&flaky, BaseOptions(100)).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(SamplerFaultTest, ToleranceSurvivesFlakyQueries) {
  FlakyDatabase flaky(engine_, {.query_failure_period = 4});
  SamplerOptions opts = BaseOptions(80);
  opts.max_database_errors = 1'000;
  auto result = QueryBasedSampler(&flaky, opts).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents_examined, 80u);
  EXPECT_GT(result->database_errors, 0u);
}

TEST_F(SamplerFaultTest, ToleranceSurvivesFlakyFetches) {
  FlakyDatabase flaky(engine_, {.fetch_failure_period = 6});
  SamplerOptions opts = BaseOptions(80);
  opts.max_database_errors = 1'000;
  auto result = QueryBasedSampler(&flaky, opts).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents_examined, 80u);
  EXPECT_GT(result->database_errors, 0u);
  // Documents skipped by fetch failures are not counted as examined.
  EXPECT_EQ(result->learned.num_docs(), 80u);
}

TEST_F(SamplerFaultTest, ExhaustedToleranceReturnsError) {
  FlakyDatabase flaky(engine_, {.query_failure_period = 2});  // every other
  SamplerOptions opts = BaseOptions(200);
  opts.max_database_errors = 3;
  auto result = QueryBasedSampler(&flaky, opts).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(SamplerFaultTest, FlakyAndHealthyRunsConvergeSimilarly) {
  // Transient failures cost queries but not model quality.
  SamplerOptions opts = BaseOptions(100);
  auto healthy = QueryBasedSampler(engine_, opts).Run();
  ASSERT_TRUE(healthy.ok());

  FlakyDatabase flaky(engine_, {.query_failure_period = 5});
  SamplerOptions flaky_opts = BaseOptions(100);
  flaky_opts.max_database_errors = 1'000;
  auto flaked = QueryBasedSampler(&flaky, flaky_opts).Run();
  ASSERT_TRUE(flaked.ok());

  EXPECT_EQ(healthy->documents_examined, flaked->documents_examined);
  // Vocabulary sizes should be in the same ballpark (same corpus, same
  // budget; different query paths).
  double ratio = static_cast<double>(healthy->learned.vocabulary_size()) /
                 flaked->learned.vocabulary_size();
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

}  // namespace
}  // namespace qbs

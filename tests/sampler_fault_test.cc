// Failure-injection tests: the sampler against flaky and hostile databases.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "corpus/synthetic.h"
#include "sampling/sampler.h"
#include "search/text_database.h"
#include "tests/testing/fake_databases.h"

namespace qbs {
namespace {

using testing::FlakyDatabase;

class SamplerFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusSpec spec;
    spec.name = "faultdb";
    spec.num_docs = 600;
    spec.vocab_size = 30'000;
    spec.num_topics = 4;
    spec.seed = 424242;
    auto engine = BuildSyntheticEngine(spec);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  SamplerOptions BaseOptions(size_t max_docs) {
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = max_docs;
    LanguageModel actual = engine_->ActualLanguageModel();
    Rng rng(5);
    auto term = RandomEligibleTerm(actual, opts.filter, rng);
    EXPECT_TRUE(term.has_value());
    opts.initial_term = *term;
    return opts;
  }

  static SearchEngine* engine_;
};

SearchEngine* SamplerFaultTest::engine_ = nullptr;

TEST_F(SamplerFaultTest, DefaultPropagatesFirstQueryError) {
  FlakyDatabase flaky(engine_, {.query_failure_period = 3});
  auto result = QueryBasedSampler(&flaky, BaseOptions(100)).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(SamplerFaultTest, DefaultPropagatesFirstFetchError) {
  FlakyDatabase flaky(engine_, {.fetch_failure_period = 5});
  auto result = QueryBasedSampler(&flaky, BaseOptions(100)).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(SamplerFaultTest, ToleranceSurvivesFlakyQueries) {
  FlakyDatabase flaky(engine_, {.query_failure_period = 4});
  SamplerOptions opts = BaseOptions(80);
  opts.max_database_errors = 1'000;
  auto result = QueryBasedSampler(&flaky, opts).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents_examined, 80u);
  EXPECT_GT(result->database_errors, 0u);
}

TEST_F(SamplerFaultTest, ToleranceSurvivesFlakyFetches) {
  FlakyDatabase flaky(engine_, {.fetch_failure_period = 6});
  SamplerOptions opts = BaseOptions(80);
  opts.max_database_errors = 1'000;
  auto result = QueryBasedSampler(&flaky, opts).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents_examined, 80u);
  EXPECT_GT(result->database_errors, 0u);
  // Documents skipped by fetch failures are not counted as examined.
  EXPECT_EQ(result->learned.num_docs(), 80u);
}

TEST_F(SamplerFaultTest, ExhaustedToleranceReturnsError) {
  FlakyDatabase flaky(engine_, {.query_failure_period = 2});  // every other
  SamplerOptions opts = BaseOptions(200);
  opts.max_database_errors = 3;
  auto result = QueryBasedSampler(&flaky, opts).Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(SamplerFaultTest, FlakyAndHealthyRunsConvergeSimilarly) {
  // Transient failures cost queries but not model quality.
  SamplerOptions opts = BaseOptions(100);
  auto healthy = QueryBasedSampler(engine_, opts).Run();
  ASSERT_TRUE(healthy.ok());

  FlakyDatabase flaky(engine_, {.query_failure_period = 5});
  SamplerOptions flaky_opts = BaseOptions(100);
  flaky_opts.max_database_errors = 1'000;
  auto flaked = QueryBasedSampler(&flaky, flaky_opts).Run();
  ASSERT_TRUE(flaked.ok());

  EXPECT_EQ(healthy->documents_examined, flaked->documents_examined);
  // Vocabulary sizes should be in the same ballpark (same corpus, same
  // budget; different query paths).
  double ratio = static_cast<double>(healthy->learned.vocabulary_size()) /
                 flaked->learned.vocabulary_size();
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

}  // namespace
}  // namespace qbs

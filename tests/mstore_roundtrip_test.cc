// The model store acceptance test: for every ranker, Select over a
// packed-then-mmapped collection returns byte-identical rankings to the
// heap-built collection at the same epoch — and a cold service start
// from a packed store publishes its first snapshot without sampling.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "mstore/mapped_model_store.h"
#include "mstore/model_store_writer.h"
#include "selection/db_selection.h"
#include "service/sampling_service.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  fs::path p = fs::temp_directory_path() /
               ("qbs_mstore_rt_" + tag + "_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                ".qms");
  fs::remove(p);
  return p.string();
}

// A federation with deliberately varied statistics: overlapping and
// disjoint vocabularies, a db with one document, and a term present
// everywhere — the shapes that exercise each ranker differently.
std::vector<std::pair<std::string, LanguageModel>> BuildFederation() {
  std::vector<std::pair<std::string, LanguageModel>> dbs;
  LanguageModel news;
  news.AddTerm("market", 40, 120);
  news.AddTerm("election", 25, 60);
  news.AddTerm("weather", 10, 15);
  news.AddTerm("common", 50, 200);
  news.set_num_docs(60);
  dbs.emplace_back("news", std::move(news));

  LanguageModel medicine;
  medicine.AddTerm("protein", 33, 90);
  medicine.AddTerm("trial", 20, 41);
  medicine.AddTerm("market", 2, 2);
  medicine.AddTerm("common", 45, 333);
  medicine.set_num_docs(48);
  dbs.emplace_back("medicine", std::move(medicine));

  LanguageModel tiny;
  tiny.AddTerm("weather", 1, 4);
  tiny.AddTerm("common", 1, 1);
  tiny.set_num_docs(1);
  dbs.emplace_back("tiny", std::move(tiny));

  LanguageModel law;
  law.AddTerm("trial", 30, 77);
  law.AddTerm("election", 12, 19);
  law.AddTerm("appeal", 28, 64);
  law.AddTerm("common", 39, 101);
  law.set_num_docs(52);
  dbs.emplace_back("law", std::move(law));
  return dbs;
}

TEST(MstoreAcceptanceTest, EveryRankerIsByteIdenticalHeapVsMapped) {
  auto federation = BuildFederation();

  DatabaseCollection heap;
  ModelStoreWriter writer;
  for (const auto& [name, model] : federation) {
    heap.Add(name, model);
    ASSERT_TRUE(writer.Add(name, model).ok());
  }
  std::string path = TempPath("accept");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto store = MappedModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DatabaseCollection mapped = CollectionFromStore(*store);

  const std::vector<std::vector<std::string>> queries = {
      {"market"},
      {"election", "trial"},
      {"common"},
      {"weather", "protein", "appeal"},
      {"absent"},
      {"market", "market", "common"},  // repeated query terms
      {},                              // empty query
  };
  for (const std::string& ranker_name : KnownRankerNames()) {
    auto heap_ranker = MakeRanker(ranker_name, &heap);
    auto mapped_ranker = MakeRanker(ranker_name, &mapped);
    ASSERT_NE(heap_ranker, nullptr) << ranker_name;
    ASSERT_NE(mapped_ranker, nullptr) << ranker_name;
    for (const auto& query : queries) {
      std::vector<DatabaseScore> expected = heap_ranker->Rank(query);
      std::vector<DatabaseScore> got = mapped_ranker->Rank(query);
      ASSERT_EQ(got.size(), expected.size()) << ranker_name;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].db_name, expected[i].db_name)
            << ranker_name << " rank " << i;
        // Byte-identical, not approximately equal: the mapped store must
        // feed rankers exactly the counts the heap models hold.
        EXPECT_EQ(got[i].score, expected[i].score)
            << ranker_name << " rank " << i << " (" << got[i].db_name << ")";
      }
    }
  }
  fs::remove(path);
}

TEST(MstoreAcceptanceTest, ColdServiceStartServesFromStoreWithoutSampling) {
  std::string path = TempPath("cold");

  // First life: sample a small synthetic federation and pack the store.
  std::vector<DatabaseScore> first_ranking;
  {
    ServiceOptions opts;
    opts.sampler.stopping.max_documents = 40;
    opts.store_path = path;
    SamplingService service(opts);
    auto cacm = BuildSyntheticEngine(CacmLikeSpec());
    auto kb = BuildSyntheticEngine(SupportKbLikeSpec());
    ASSERT_TRUE(cacm.ok());
    ASSERT_TRUE(kb.ok());
    ASSERT_TRUE(service.AddDatabase(cacm->get()).ok());
    ASSERT_TRUE(service.AddDatabase(kb->get()).ok());
    ASSERT_TRUE(service.RefreshAll().ok());
    auto ranking = service.Select("information system", "cori");
    ASSERT_TRUE(ranking.ok());
    first_ranking = *ranking;
    ASSERT_TRUE(fs::exists(path));
  }

  // Second life: no databases registered at all — the store alone must
  // bring the broker back to serving, byte-identically.
  {
    ServiceOptions opts;
    opts.store_path = path;
    SamplingService service(opts);
    ASSERT_TRUE(service.LoadStore().ok());
    EXPECT_EQ(service.registry().Snapshot()->collection().size(), 2u);
    auto ranking = service.Select("information system", "cori");
    ASSERT_TRUE(ranking.ok()) << ranking.status().ToString();
    ASSERT_EQ(ranking->size(), first_ranking.size());
    for (size_t i = 0; i < first_ranking.size(); ++i) {
      EXPECT_EQ((*ranking)[i].db_name, first_ranking[i].db_name);
      EXPECT_EQ((*ranking)[i].score, first_ranking[i].score);
    }
  }

  // A service without a store_path refuses LoadStore, typed.
  {
    SamplingService service(ServiceOptions{});
    EXPECT_EQ(service.LoadStore().code(), StatusCode::kFailedPrecondition);
  }
  fs::remove(path);
}

}  // namespace
}  // namespace qbs

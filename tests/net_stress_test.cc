// Concurrency stress for the network layer. Built in every config; the
// decisive runs are under the `tsan` and `asan-ubsan` presets, where any
// data race or lifetime error in the server/pool machinery is a gate
// failure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/synthetic.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "service/sampling_service.h"

namespace qbs {
namespace {

std::unique_ptr<SearchEngine> MakeEngine(const std::string& name,
                                         uint64_t seed) {
  SyntheticCorpusSpec spec;
  spec.name = name;
  spec.num_docs = 300;
  spec.vocab_size = 30'000;
  spec.num_topics = 3;
  spec.seed = seed;
  auto engine = BuildSyntheticEngine(spec);
  EXPECT_TRUE(engine.ok());
  return std::move(*engine);
}

std::vector<std::string> SeedTerms(SearchEngine& engine) {
  std::vector<std::string> seeds;
  LanguageModel actual = engine.ActualLanguageModel();
  for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 3)) {
    seeds.push_back(term);
  }
  return seeds;
}

RemoteDatabaseOptions ClientFor(const DbServer& server) {
  RemoteDatabaseOptions opts;
  opts.host = "127.0.0.1";
  opts.port = server.port();
  return opts;
}

// Many threads share one RemoteTextDatabase: the connection pool and the
// retry counters are the contended state.
TEST(NetStressTest, ThreadsHammerOneSharedRemoteDatabase) {
  auto engine = MakeEngine("stress-shared", 9001);
  std::vector<std::string> seeds = SeedTerms(*engine);

  DbServerOptions server_opts;
  server_opts.num_workers = 8;
  DbServer server(engine.get(), server_opts);
  ASSERT_TRUE(server.Start().ok());

  RemoteTextDatabase remote(ClientFor(server));
  ASSERT_TRUE(remote.Connect().ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kCallsPerThread = 25;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kCallsPerThread; ++i) {
        const std::string& term = seeds[(t + i) % seeds.size()];
        auto hits = remote.RunQuery(term, 4);
        if (!hits.ok()) {
          ++failures;
          continue;
        }
        for (const SearchHit& hit : *hits) {
          if (!remote.FetchDocument(hit.handle).ok()) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  server.Stop();
}

// The acceptance shape: multi-threaded RefreshAll where every database
// in the federation is remote, each behind its own server.
TEST(NetStressTest, ParallelRefreshAllOverSeveralRemoteDatabases) {
  constexpr size_t kNumDbs = 3;
  std::vector<std::unique_ptr<SearchEngine>> engines;
  std::vector<std::unique_ptr<DbServer>> servers;
  std::vector<std::string> seeds;
  for (size_t i = 0; i < kNumDbs; ++i) {
    engines.push_back(MakeEngine("stress-fed-" + std::to_string(i),
                                 5000 + 31 * i));
    for (const std::string& term : SeedTerms(*engines.back())) {
      seeds.push_back(term);
    }
    servers.push_back(
        std::make_unique<DbServer>(engines.back().get(), DbServerOptions{}));
    ASSERT_TRUE(servers.back()->Start().ok());
  }

  ServiceOptions opts;
  opts.sampler.stopping.max_documents = 40;
  opts.seed_terms = seeds;
  opts.num_threads = kNumDbs;

  SamplingService service(opts);
  for (auto& server : servers) {
    auto remote = std::make_unique<RemoteTextDatabase>(ClientFor(*server));
    ASSERT_TRUE(remote->Connect().ok());
    ASSERT_TRUE(service.AddDatabase(std::move(remote)).ok());
  }

  Status status = service.RefreshAll();
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (const DatabaseState& state : service.state()) {
    EXPECT_TRUE(state.has_model) << state.name;
    EXPECT_EQ(state.documents_examined, 40u) << state.name;
    EXPECT_GT(state.learned.vocabulary_size(), 50u) << state.name;
  }

  for (auto& server : servers) server->Stop();
}

// Stop() races in-flight calls: every call must resolve (success or a
// transient error), no reader may hang, and teardown must be clean.
TEST(NetStressTest, StopWhileCallsInFlight) {
  auto engine = MakeEngine("stress-stop", 42424);
  std::vector<std::string> seeds = SeedTerms(*engine);

  DbServer server(engine.get(), DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  RemoteDatabaseOptions client_opts = ClientFor(server);
  client_opts.max_attempts = 1;  // failures after Stop() are expected
  client_opts.call_timeout_us = 2'000'000;
  RemoteTextDatabase remote(client_opts);
  ASSERT_TRUE(remote.Connect().ok());

  std::atomic<bool> stop_requested{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 200 && !stop_requested.load(); ++i) {
        // Outcome intentionally ignored: success and transient failure
        // are both legal once Stop() lands. The assertion is that this
        // loop terminates and the sanitizers stay quiet.
        (void)remote.RunQuery(seeds[(t + i) % seeds.size()], 3);
      }
    });
  }
  // Let some calls complete, then yank the server out from under them.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  stop_requested.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(server.running());
}

// Back-to-back server lifecycles on the same thread pool sizes: catches
// leaked accept threads, fd leaks, and port-binding races.
TEST(NetStressTest, RepeatedStartStopCycles) {
  auto engine = MakeEngine("stress-cycle", 808);
  std::vector<std::string> seeds = SeedTerms(*engine);
  for (int cycle = 0; cycle < 5; ++cycle) {
    DbServer server(engine.get(), DbServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    RemoteTextDatabase remote(ClientFor(server));
    auto hits = remote.RunQuery(seeds[0], 3);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    server.Stop();
  }
}

}  // namespace
}  // namespace qbs

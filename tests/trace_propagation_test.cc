// The distributed-tracing acceptance scenario: one Select through a
// live broker that fans out to a remote DbServer, with all three tiers
// (selector client, broker, db server) recording spans. Every span must
// carry the single trace id the client minted, and the parent links
// must reconstruct the call tree:
//
//   net.rpc/select#A            client-side RPC span (trace root)
//     net.serve/select#A        broker server handling tier
//       net.rpc/run_query#B     broker's fan-out call to the db server
//         net.serve/run_query#B db server handling tier
//       broker.select/...#A     broker ranking work
//
// The tiers run as separate servers on separate threads in this
// process, so the one global TraceRecorder sees all of them — which is
// exactly what lets the test assert cross-tier parent links directly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/remote_selector.h"
#include "broker/selection_broker.h"
#include "corpus/synthetic.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "obs/trace.h"
#include "service/sampling_service.h"

namespace qbs {
namespace {

const TraceEvent* FindByPrefix(const std::vector<TraceEvent>& events,
                               const std::string& prefix) {
  for (const TraceEvent& e : events) {
    if (e.name.rfind(prefix, 0) == 0) return &e;
  }
  return nullptr;
}

TEST(TracePropagationTest, OneTraceIdSpansClientBrokerAndDbServer) {
  // A small synthetic federation: one engine, sampled and published so
  // broker Selects succeed.
  SyntheticCorpusSpec spec;
  spec.name = "trace-db";
  spec.num_docs = 200;
  spec.vocab_size = 10'000;
  spec.num_topics = 2;
  spec.seed = 7100;
  auto engine = BuildSyntheticEngine(spec);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ServiceOptions service_options;
  service_options.sampler.stopping.max_documents = 30;
  LanguageModel actual = (*engine)->ActualLanguageModel();
  for (const auto& [term, score] : actual.RankedTerms(TermMetric::kCtf, 4)) {
    service_options.seed_terms.push_back(term);
  }
  SamplingService service(service_options);
  ASSERT_TRUE(service.AddDatabase(engine->get()).ok());
  ASSERT_TRUE(service.RefreshAll().ok());
  SelectionBroker broker(&service.registry());

  // Tier 3: the db server the broker fans out to.
  DbServer db_server(engine->get(), {});
  ASSERT_TRUE(db_server.Start().ok());
  RemoteDatabaseOptions db_client_options;
  db_client_options.port = db_server.port();
  RemoteTextDatabase remote_db(db_client_options);
  ASSERT_TRUE(remote_db.Connect().ok());
  ASSERT_EQ(remote_db.negotiated_version(), kWireProtocolVersion);

  // Tier 2: a broker whose admitted Selects call through to the db
  // server — the fan-out happens inside the serve-side trace scope, so
  // the nested RPC must inherit and extend the caller's trace.
  std::atomic<bool> fanout_enabled{false};
  std::atomic<bool> fanout_ok{false};
  BrokerServerOptions broker_options;
  broker_options.select_hook = [&] {
    if (!fanout_enabled.load()) return;
    auto hits = remote_db.RunQuery("anything", 2);
    fanout_ok.store(hits.ok());
  };
  BrokerServer broker_server(&broker, broker_options);
  ASSERT_TRUE(broker_server.Start().ok());

  // Tier 1: the selector client. Connect (and negotiate) before
  // enabling the recorder so only the traced Select's spans land in it.
  WireClientOptions selector_options;
  selector_options.port = broker_server.port();
  RemoteSelector selector(selector_options);
  ASSERT_TRUE(selector.Connect().ok());
  ASSERT_EQ(selector.negotiated_version(), kWireProtocolVersion);

  TraceRecorder::Global().Clear();
  TraceRecorder::Global().set_enabled(true);
  fanout_enabled.store(true);
  auto result = selector.Select(service_options.seed_terms[0], "cori");
  fanout_enabled.store(false);
  TraceRecorder::Global().set_enabled(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(fanout_ok.load());

  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  TraceRecorder::Global().Clear();
  const TraceEvent* rpc_select = FindByPrefix(events, "net.rpc/select#");
  const TraceEvent* serve_select = FindByPrefix(events, "net.serve/select#");
  const TraceEvent* broker_select = FindByPrefix(events, "broker.select/");
  const TraceEvent* rpc_run = FindByPrefix(events, "net.rpc/run_query#");
  const TraceEvent* serve_run = FindByPrefix(events, "net.serve/run_query#");
  ASSERT_NE(rpc_select, nullptr);
  ASSERT_NE(serve_select, nullptr);
  ASSERT_NE(broker_select, nullptr);
  ASSERT_NE(rpc_run, nullptr);
  ASSERT_NE(serve_run, nullptr);

  // One trace id, minted by the client's root span, spans every tier.
  EXPECT_NE(rpc_select->trace_id_hi | rpc_select->trace_id_lo, 0u);
  for (const TraceEvent* span :
       {serve_select, broker_select, rpc_run, serve_run}) {
    EXPECT_EQ(span->trace_id_hi, rpc_select->trace_id_hi) << span->name;
    EXPECT_EQ(span->trace_id_lo, rpc_select->trace_id_lo) << span->name;
  }

  // Parent links reconstruct the call tree across the wire hops.
  EXPECT_EQ(rpc_select->parent_span_id, 0u);  // the root
  EXPECT_EQ(serve_select->parent_span_id, rpc_select->span_id);
  EXPECT_EQ(broker_select->parent_span_id, serve_select->span_id);
  EXPECT_EQ(rpc_run->parent_span_id, serve_select->span_id);
  EXPECT_EQ(serve_run->parent_span_id, rpc_run->span_id);

  // The request id crosses the wire: client and server spans of the
  // same hop agree on it, and the two hops use distinct global ids.
  std::string select_id = rpc_select->name.substr(rpc_select->name.find('#'));
  std::string run_id = rpc_run->name.substr(rpc_run->name.find('#'));
  EXPECT_EQ(serve_select->name.substr(serve_select->name.find('#')),
            select_id);
  EXPECT_EQ(serve_run->name.substr(serve_run->name.find('#')), run_id);
  EXPECT_NE(select_id, run_id);
}

TEST(TracePropagationTest, UnsampledRootStaysSilentAcrossTiers) {
  // With the recorder disabled on the client there is no root span, no
  // ambient context, and therefore nothing injected on the wire: the
  // server side must record nothing even if its recorder were enabled.
  SyntheticCorpusSpec spec;
  spec.name = "trace-db-2";
  spec.num_docs = 100;
  spec.vocab_size = 5'000;
  spec.seed = 7200;
  auto engine = BuildSyntheticEngine(spec);
  ASSERT_TRUE(engine.ok());
  DbServer db_server(engine->get(), {});
  ASSERT_TRUE(db_server.Start().ok());
  RemoteDatabaseOptions options;
  options.port = db_server.port();
  RemoteTextDatabase client(options);
  ASSERT_TRUE(client.Connect().ok());

  TraceRecorder::Global().Clear();
  ASSERT_FALSE(TraceRecorder::Global().enabled());
  auto hits = client.RunQuery("anything", 2);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
}

}  // namespace
}  // namespace qbs

// Unit tests for the binary coding primitives shared by the model
// store and (eventually) the wire/index formats: CRC32C and the
// little-endian fixed-width helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/crc32c.h"
#include "util/endian.h"

namespace qbs {
namespace {

// The canonical CRC32C check value (RFC 3720 appendix B / every
// published implementation): crc32c("123456789") == 0xE3069283.
TEST(Crc32cTest, CheckValue) {
  EXPECT_EQ(Crc32c::Of("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c::Of("", 0), 0u);
  Crc32c crc;
  EXPECT_EQ(crc.digest(), 0u);
}

// Known vectors from the iSCSI spec (also pinned by leveldb's suite).
TEST(Crc32cTest, StandardVectors) {
  uint8_t buf[32];

  std::fill(std::begin(buf), std::end(buf), uint8_t{0});
  EXPECT_EQ(Crc32c::Of(buf, sizeof(buf)), 0x8A9136AAu);

  std::fill(std::begin(buf), std::end(buf), uint8_t{0xFF});
  EXPECT_EQ(Crc32c::Of(buf, sizeof(buf)), 0x62A8AB43u);

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c::Of(buf, sizeof(buf)), 0x46DD794Eu);

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(31 - i);
  EXPECT_EQ(Crc32c::Of(buf, sizeof(buf)), 0x113FDB5Cu);
}

// Incremental updates over arbitrary split points must equal one-shot.
TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 997; ++i) {
    data.push_back(static_cast<char>((i * 131 + 7) & 0xFF));
  }
  uint32_t whole = Crc32c::Of(data);
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{64}, size_t{996}, size_t{997}}) {
    Crc32c crc;
    crc.Update(data.substr(0, split));
    crc.Update(data.substr(split));
    EXPECT_EQ(crc.digest(), whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DigestDoesNotResetState) {
  Crc32c crc;
  crc.Update("1234");
  (void)crc.digest();
  crc.Update("56789");
  EXPECT_EQ(crc.digest(), 0xE3069283u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c::Of("hello"), Crc32c::Of("hellp"));
  EXPECT_NE(Crc32c::Of("hello"), Crc32c::Of("hell"));
}

TEST(EndianTest, RoundTrip16) {
  uint8_t buf[2];
  for (uint32_t v : {0u, 1u, 0x1234u, 0xFFFFu}) {
    StoreLe16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(LoadLe16(buf), v);
  }
}

TEST(EndianTest, RoundTrip32) {
  uint8_t buf[4];
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    StoreLe32(buf, v);
    EXPECT_EQ(LoadLe32(buf), v);
  }
}

TEST(EndianTest, RoundTrip64) {
  uint8_t buf[8];
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0x0123456789ABCDEF},
                     ~uint64_t{0}}) {
    StoreLe64(buf, v);
    EXPECT_EQ(LoadLe64(buf), v);
  }
}

// The byte order on disk is little-endian regardless of host.
TEST(EndianTest, ByteLayoutIsLittleEndian) {
  uint8_t buf[8];
  StoreLe32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04u);
  EXPECT_EQ(buf[1], 0x03u);
  EXPECT_EQ(buf[2], 0x02u);
  EXPECT_EQ(buf[3], 0x01u);
  StoreLe64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x08u);
  EXPECT_EQ(buf[7], 0x01u);
}

TEST(EndianTest, AppendHelpers) {
  std::string out;
  AppendLe16(&out, 0x0201u);
  AppendLe32(&out, 0x06050403u);
  AppendLe64(&out, 0x0E0D0C0B0A090807ull);
  ASSERT_EQ(out.size(), 14u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(out[i]), i + 1) << "byte " << i;
  }
}

}  // namespace
}  // namespace qbs

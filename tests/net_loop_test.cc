// The epoll server core under adversarial clients: slow-loris senders
// that trickle one byte per tick, pipelined floods, peers that never
// read their responses (write backpressure), idle-connection churn (no
// fd leaks), the idle and admission deadlines, and graceful shutdown
// draining an in-flight request. These are behaviors a
// thread-per-connection server got for free from blocking reads; the
// event loop must earn each one explicitly, so each is pinned here.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace qbs {
namespace {

/// Open descriptors of this process — the fd-leak oracle.
size_t OpenFdCount() {
  DIR* dir = ::opendir("/proc/self/fd");
  EXPECT_NE(dir, nullptr);
  size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count >= 2 ? count - 2 : 0;  // "." and ".."
}

/// A FrameServer with a pluggable handler body: echoes ping/server_info
/// like a real server, and for fetch_document returns a document of
/// max_results bytes — a knob for making responses arbitrarily bulky.
/// An optional hook runs inside Handle() to slow it down.
class LoopTestServer : public FrameServer {
 public:
  explicit LoopTestServer(FrameServerOptions options)
      : FrameServer("LoopTestServer", std::move(options)) {}
  ~LoopTestServer() override { Stop(); }

  void set_handle_hook(std::function<void()> hook) {
    handle_hook_ = std::move(hook);
  }

 protected:
  WireResponse Handle(const WireRequest& request) override {
    if (handle_hook_) handle_hook_();
    WireResponse response;
    response.request_id = request.request_id;
    response.method = request.method;
    response.protocol_version = request.protocol_version;
    if (request.method == WireMethod::kServerInfo) {
      response.server_name = "loop-test";
      response.server_protocol_version =
          std::min(spoken_version(), request.protocol_version);
    } else if (request.method == WireMethod::kFetchDocument) {
      // The handle names the response size — the bulky-response knob.
      response.document.assign(
          std::strtoul(request.handle.c_str(), nullptr, 10), 'x');
    }
    return response;
  }

 private:
  std::function<void()> handle_hook_;
};

std::vector<uint8_t> PingFrame(uint64_t request_id) {
  WireRequest request;
  request.method = WireMethod::kPing;
  request.request_id = request_id;
  std::vector<uint8_t> payload = EncodeRequest(request);
  std::vector<uint8_t> frame(4 + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < 4; ++i) {
    frame[i] = static_cast<uint8_t>((length >> (8 * i)) & 0xFF);
  }
  std::copy(payload.begin(), payload.end(), frame.begin() + 4);
  return frame;
}

std::vector<uint8_t> FetchFrame(uint64_t request_id, uint64_t doc_bytes) {
  WireRequest request;
  request.method = WireMethod::kFetchDocument;
  request.request_id = request_id;
  request.handle = std::to_string(doc_bytes);
  std::vector<uint8_t> payload = EncodeRequest(request);
  std::vector<uint8_t> frame(4 + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < 4; ++i) {
    frame[i] = static_cast<uint8_t>((length >> (8 * i)) & 0xFF);
  }
  std::copy(payload.begin(), payload.end(), frame.begin() + 4);
  return frame;
}

Result<WireResponse> ReadResponse(SocketStream& stream) {
  auto payload = ReadFrame(stream, kDefaultMaxFrameBytes);
  QBS_RETURN_IF_ERROR(payload.status());
  return DecodeResponse(*payload);
}

TEST(NetLoopTest, SlowLorisClientStillGetsItsAnswer) {
  LoopTestServer server{FrameServerOptions{}};
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  // One byte per write, a scheduling beat apart: the frame assembler
  // must hold partial state across dozens of loop iterations without
  // stalling anyone else (the concurrent fast client proves that).
  std::vector<uint8_t> frame = PingFrame(42);
  std::thread fast_client([&] {
    auto other = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
    ASSERT_TRUE(other.ok());
    std::vector<uint8_t> ping = PingFrame(7);
    ASSERT_TRUE((*other)->WriteAll(ping.data(), ping.size()).ok());
    auto response = ReadResponse(**other);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->request_id, 7u);
  });
  for (uint8_t byte : frame) {
    ASSERT_TRUE((*client)->WriteAll(&byte, 1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto response = ReadResponse(**client);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->request_id, 42u);
  EXPECT_TRUE(response->status.ok());
  fast_client.join();
  server.Stop();
}

TEST(NetLoopTest, PipelinedRequestsAnswerInOrder) {
  LoopTestServer server{FrameServerOptions{}};
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  // A burst of frames in one write: responses must come back 1:1, in
  // request order (per-connection dispatch is serial by design).
  constexpr uint64_t kRequests = 32;
  std::vector<uint8_t> burst;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    std::vector<uint8_t> frame = PingFrame(id);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE((*client)->WriteAll(burst.data(), burst.size()).ok());
  for (uint64_t id = 1; id <= kRequests; ++id) {
    auto response = ReadResponse(**client);
    ASSERT_TRUE(response.ok()) << "response " << id;
    EXPECT_EQ(response->request_id, id);
  }
  server.Stop();
}

TEST(NetLoopTest, WriteBackpressurePausesANonReadingPeer) {
  FrameServerOptions options;
  options.max_write_queue_bytes = 64 * 1024;
  LoopTestServer server{options};
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  Counter* pauses = MetricRegistry::Default().GetCounter(
      "qbs_net_loop_backpressure_pauses_total", "");
  const uint64_t pauses_before = pauses->value();

  // Ask for far more response bytes than the queue bound while never
  // reading: the server must park this connection instead of buffering
  // without limit, then deliver everything once we finally read.
  constexpr uint64_t kRequests = 64;
  constexpr uint64_t kDocBytes = 64 * 1024;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    std::vector<uint8_t> frame = FetchFrame(id, kDocBytes);
    ASSERT_TRUE((*client)->WriteAll(frame.data(), frame.size()).ok());
  }
  // Give the server time to fill the socket buffer and trip the
  // watermark while we are not reading.
  for (int i = 0; i < 200 && pauses->value() == pauses_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(pauses->value(), pauses_before)
      << "write queue never hit the backpressure watermark";

  // Now read: every response arrives, in order, intact.
  for (uint64_t id = 1; id <= kRequests; ++id) {
    auto response = ReadResponse(**client);
    ASSERT_TRUE(response.ok()) << "response " << id;
    EXPECT_EQ(response->request_id, id);
    EXPECT_EQ(response->document.size(), kDocBytes);
  }
  server.Stop();
}

TEST(NetLoopTest, IdleConnectionChurnLeaksNoFds) {
  LoopTestServer server{FrameServerOptions{}};
  ASSERT_TRUE(server.Start().ok());

  // Warm up allocator/epoll internals before taking the baseline.
  for (int i = 0; i < 16; ++i) {
    auto conn = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
    ASSERT_TRUE(conn.ok());
  }
  for (int i = 0; i < 100 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const size_t baseline = OpenFdCount();

  // Raw sockets with SO_LINGER{1,0}: the close sends RST instead of
  // FIN, so no client-side TIME_WAIT accumulates (sequential churn
  // against one port otherwise collides with its own TIME_WAIT pairs
  // and drops SYNs), and the server's peer-reset path gets exercised.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const linger reset_close{1, 0};
  // The kernel completes handshakes before accept() runs, so a
  // full-tilt dialer outruns the accept loop and fills the listen
  // backlog — at which point the kernel silently drops a SYN and the
  // affected connect stalls a full 1s retransmission timeout. Pace
  // against the server's accepted-connection counter instead: never
  // run more than a small window ahead of what it has accepted.
  Counter* accepted = MetricRegistry::Default().GetCounter(
      "qbs_net_server_connections_total", "");
  const uint64_t accepted_baseline = accepted->value();
  constexpr int kChurn = 10'000;
  constexpr uint64_t kDialWindow = 32;
  for (int i = 0; i < kChurn; ++i) {
    for (int spin = 0;
         spin < 20'000 &&
         accepted->value() - accepted_baseline + kDialWindow <
             static_cast<uint64_t>(i);
         ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << "connect " << i << ": " << std::strerror(errno);
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &reset_close,
                           sizeof(reset_close)),
              0);
    ::close(fd);
  }
  // Drain: the server processes the EOFs asynchronously.
  for (int i = 0; i < 1000 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_connections(), 0u);
  const size_t after = OpenFdCount();
  // Identical would be ideal; allow a whisker of slack for unrelated
  // runtime fds, but 10'000 churned connections must not trend upward.
  EXPECT_LE(after, baseline + 4)
      << "fd count grew from " << baseline << " to " << after;
  server.Stop();
}

TEST(NetLoopTest, IdleTimeoutDropsQuietConnections) {
  FrameServerOptions options;
  options.idle_timeout_us = 50'000;
  LoopTestServer server{options};
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  // An active connection survives its first deadline...
  std::vector<uint8_t> ping = PingFrame(1);
  ASSERT_TRUE((*client)->WriteAll(ping.data(), ping.size()).ok());
  ASSERT_TRUE(ReadResponse(**client).ok());

  // ...then goes quiet and must be dropped: the next read sees EOF.
  (*client)->SetDeadlineMicros(2'000'000);
  uint8_t byte = 0;
  Status read = (*client)->ReadFull(&byte, 1);
  ASSERT_FALSE(read.ok());
  EXPECT_FALSE(read.IsDeadlineExceeded())
      << "server never closed the idle connection";
  for (int i = 0; i < 200 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_connections(), 0u);
  server.Stop();
}

TEST(NetLoopTest, AdmissionDeadlineShedsStaleQueuedRequests) {
  FrameServerOptions options;
  options.num_workers = 1;
  options.queue_timeout_us = 20'000;
  LoopTestServer server{options};
  server.set_handle_hook(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(80)); });
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  // Two pipelined requests into a one-worker server whose handler takes
  // 80ms: the second waits out its 20ms admission deadline behind the
  // first and must come back Unavailable — the retryable shedding
  // contract — not be served stale.
  std::vector<uint8_t> burst = PingFrame(1);
  std::vector<uint8_t> second = PingFrame(2);
  burst.insert(burst.end(), second.begin(), second.end());
  ASSERT_TRUE((*client)->WriteAll(burst.data(), burst.size()).ok());

  auto first = ReadResponse(**client);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->request_id, 1u);
  EXPECT_TRUE(first->status.ok());

  auto shed = ReadResponse(**client);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->request_id, 2u);
  EXPECT_TRUE(shed->status.IsUnavailable()) << shed->status.ToString();
  EXPECT_TRUE(shed->status.IsTransient());
  server.Stop();
}

TEST(NetLoopTest, GracefulStopDrainsTheInFlightRequest) {
  LoopTestServer server{FrameServerOptions{}};
  std::atomic<bool> in_handler{false};
  server.set_handle_hook([&] {
    in_handler.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  std::vector<uint8_t> ping = PingFrame(99);
  ASSERT_TRUE((*client)->WriteAll(ping.data(), ping.size()).ok());
  while (!in_handler.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Stop while the request is mid-handler: the response must still
  // arrive before the connection closes.
  std::thread stopper([&] { server.Stop(); });
  (*client)->SetDeadlineMicros(5'000'000);
  auto response = ReadResponse(**client);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->request_id, 99u);
  EXPECT_TRUE(response->status.ok());
  stopper.join();
  EXPECT_FALSE(server.running());
}

TEST(NetLoopTest, OversizedFrameDropsTheConnection) {
  FrameServerOptions options;
  options.max_frame_bytes = 1024;
  LoopTestServer server{options};
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());

  // A length prefix over the limit must be rejected before any payload
  // allocation, and the connection dropped.
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_TRUE((*client)->WriteAll(huge, sizeof(huge)).ok());
  (*client)->SetDeadlineMicros(2'000'000);
  uint8_t byte = 0;
  Status read = (*client)->ReadFull(&byte, 1);
  ASSERT_FALSE(read.ok());
  EXPECT_FALSE(read.IsDeadlineExceeded())
      << "server kept an out-of-sync connection open";
  server.Stop();
}

TEST(NetLoopTest, ServerRestartsOnAFreshLoop) {
  FrameServerOptions options;
  LoopTestServer server{options};
  ASSERT_TRUE(server.Start().ok());
  const uint16_t first_port = server.port();
  {
    auto client = SocketStream::Dial("127.0.0.1", first_port, 1'000'000);
    ASSERT_TRUE(client.ok());
    std::vector<uint8_t> ping = PingFrame(1);
    ASSERT_TRUE((*client)->WriteAll(ping.data(), ping.size()).ok());
    ASSERT_TRUE(ReadResponse(**client).ok());
  }
  server.Stop();
  ASSERT_FALSE(server.running());

  // A stopped server starts again with a pristine loop and serves.
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketStream::Dial("127.0.0.1", server.port(), 1'000'000);
  ASSERT_TRUE(client.ok());
  std::vector<uint8_t> ping = PingFrame(2);
  ASSERT_TRUE((*client)->WriteAll(ping.data(), ping.size()).ok());
  auto response = ReadResponse(**client);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->request_id, 2u);
  server.Stop();
}

}  // namespace
}  // namespace qbs

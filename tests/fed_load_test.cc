// Federation soak (ctest label `load`): concurrent clients hammering a
// FederatedSelector over three real shard brokers while one shard
// keeps republishing underneath them. Every completed select must be
// internally consistent (sorted by the merge's total order, one epoch
// per live shard); transient degradation — Unavailable from attempt
// exhaustion under publish churn, or a flagged partial when a pegged
// host starves a shard past its retry budget — is tolerated up to 10%
// of selects, anything else is a failure.
//
// QBS_FED_SOAK_SELECTS scales the soak (default 200 selects across the
// client threads; CI's load job runs it larger).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/selection_broker.h"
#include "fed/federated_selector.h"
#include "selection/db_selection.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

size_t SoakSelects() {
  const char* env = std::getenv("QBS_FED_SOAK_SELECTS");
  if (env == nullptr) return 200;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 200;
}

DatabaseCollection MakeCollection(size_t shard, uint64_t generation,
                                  const std::vector<std::string>& vocab) {
  DatabaseCollection dbs;
  for (size_t d = 0; d < 4; ++d) {
    LanguageModel model;
    uint64_t max_df = 1;
    for (size_t t = 0; t < vocab.size(); ++t) {
      uint64_t df = 1 + (shard * 131 + d * 17 + t * 7 + generation * 3) % 50;
      uint64_t ctf = df + (shard * 19 + d * 29 + t * 13 + generation) % 200;
      model.AddTerm(vocab[t], df, ctf);
      max_df = std::max(max_df, df);
    }
    model.set_num_docs(max_df + d + 1);
    dbs.Add("soak-" + std::to_string(shard) + "-" + std::to_string(d),
            std::move(model));
  }
  return dbs;
}

TEST(FedLoadTest, ConcurrentSelectsSurvivePublishChurn) {
  Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> vocab;
  for (const char* word : {"recipe", "cooking", "quantum", "galaxy",
                           "neural", "network", "protein", "genome"}) {
    for (std::string& t : analyzer.Analyze(word)) vocab.push_back(std::move(t));
  }

  constexpr size_t kShards = 3;
  std::vector<std::unique_ptr<ModelRegistry>> registries;
  std::vector<std::unique_ptr<SelectionBroker>> brokers;
  std::vector<std::unique_ptr<BrokerServer>> servers;
  FederatedSelectorOptions options;
  for (size_t s = 0; s < kShards; ++s) {
    registries.push_back(std::make_unique<ModelRegistry>());
    registries.back()->Publish(MakeCollection(s, /*generation=*/0, vocab));
    brokers.push_back(
        std::make_unique<SelectionBroker>(registries.back().get()));
    servers.push_back(std::make_unique<BrokerServer>(brokers.back().get(),
                                                     BrokerServerOptions{}));
    ASSERT_TRUE(servers.back()->Start().ok());
    options.shards.push_back("127.0.0.1:" +
                             std::to_string(servers.back()->port()));
  }
  FederatedSelector fed(options);

  const size_t total_selects = SoakSelects();
  constexpr size_t kClients = 4;
  const std::vector<std::string> queries = {
      "recipe cooking", "quantum galaxy", "neural network protein",
      "genome recipe quantum"};

  // One shard republishes continuously for the whole soak. The period
  // must stay a healthy multiple of one select's latency: when a
  // publish lands between a select's two phases the epoch pin forces a
  // full-attempt restart, so churn at ~the select period would make
  // exhausting max_query_attempts the *expected* outcome on a slow
  // (sanitizer, pegged-CI) host rather than the rare one this test
  // asserts it is.
  std::atomic<bool> stop{false};
  std::thread republisher([&] {
    uint64_t generation = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      registries[0]->Publish(MakeCollection(0, generation++, vocab));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::atomic<size_t> ok_selects{0};
  std::atomic<size_t> unavailable_selects{0};
  std::atomic<size_t> partial_selects{0};
  std::atomic<size_t> hard_failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const size_t n = total_selects / kClients;
      for (size_t i = 0; i < n; ++i) {
        const std::string& ranker =
            KnownRankerNames()[(c + i) % KnownRankerNames().size()];
        auto result = fed.Select(queries[(c + i) % queries.size()], ranker);
        if (!result.ok()) {
          // Attempt exhaustion under publish churn is legal; anything
          // else is not.
          if (result.status().IsUnavailable()) {
            unavailable_selects.fetch_add(1, std::memory_order_relaxed);
          } else {
            hard_failures.fetch_add(1, std::memory_order_relaxed);
            ADD_FAILURE() << result.status().ToString();
          }
          continue;
        }
        if (result->partial) {
          // A shard that could not be reached within its full retry
          // budget while the host is oversubscribed is the same
          // transient class as attempt exhaustion: counted as degraded
          // below, not a failure — but the answer over the live subset
          // must still be internally consistent.
          partial_selects.fetch_add(1, std::memory_order_relaxed);
          EXPECT_LT(result->shard_epochs.size(), kShards);
          EXPECT_EQ(result->scores.size(), result->shard_epochs.size() * 4);
        } else {
          ok_selects.fetch_add(1, std::memory_order_relaxed);
          EXPECT_EQ(result->shard_epochs.size(), kShards);
          EXPECT_EQ(result->scores.size(), kShards * 4);
        }
        for (size_t r = 1; r < result->scores.size(); ++r) {
          const DatabaseScore& a = result->scores[r - 1];
          const DatabaseScore& b = result->scores[r];
          EXPECT_TRUE(a.score > b.score ||
                      (a.score == b.score && a.db_name < b.db_name))
              << "merge order violated at rank " << r;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  republisher.join();

  EXPECT_EQ(hard_failures.load(), 0u);
  EXPECT_GT(ok_selects.load(), 0u);
  // Churn may exhaust an attempt budget occasionally, and a pegged CI
  // host may starve a shard past its retry budget, but the retry loop
  // should absorb the vast majority: a systematically down shard fails
  // every select, not one in ten.
  const size_t degraded = unavailable_selects.load() + partial_selects.load();
  EXPECT_GE(ok_selects.load(), (ok_selects.load() + degraded) * 9 / 10);

  // The fleet ends healthy and observable.
  auto status = fed.ShardStatus();
  ASSERT_EQ(status.size(), kShards);
  for (const ShardStatusInfo& shard : status) {
    EXPECT_TRUE(shard.healthy) << shard.address;
    EXPECT_EQ(shard.databases, 4u) << shard.address;
  }
}

}  // namespace
}  // namespace qbs

// Negative compile-fixture: dropping a Status on the floor must NOT
// compile under -Werror=unused-result, because Status is [[nodiscard]].
// tests/CMakeLists.txt try_compile()s this at configure time expecting
// failure, and the `status_nodiscard_compile_fail` ctest re-runs the
// compiler on it expecting a non-zero exit (WILL_FAIL).
#include "util/status.h"

namespace {

qbs::Status Flush() { return qbs::Status::IOError("disk full"); }

}  // namespace

int main() {
  Flush();  // the dropped Status: this line must be a compile error
  return 0;
}

// Positive control for dropped_status.cc: the same dropped call is
// fine once the drop is explicit — IgnoreError() is the sanctioned
// escape hatch, and this file must keep compiling under
// -Werror=unused-result.
#include "util/status.h"

namespace {

qbs::Status Flush() { return qbs::Status::IOError("disk full"); }

}  // namespace

int main() {
  Flush().IgnoreError();  // explicit, grep-able, intentional
  return 0;
}

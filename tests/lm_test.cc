// Tests for LanguageModel construction, transforms, and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "index/inverted_index.h"
#include "lm/language_model.h"
#include "lm/lm_builder.h"
#include "text/stopwords.h"

namespace qbs {
namespace {

TEST(LanguageModelTest, AddDocumentCountsDfOncePerDoc) {
  LanguageModel lm;
  lm.AddDocument({"apple", "apple", "bear"});
  lm.AddDocument({"apple"});
  const TermStats* apple = lm.Find("apple");
  ASSERT_NE(apple, nullptr);
  EXPECT_EQ(apple->df, 2u);
  EXPECT_EQ(apple->ctf, 3u);
  const TermStats* bear = lm.Find("bear");
  ASSERT_NE(bear, nullptr);
  EXPECT_EQ(bear->df, 1u);
  EXPECT_EQ(bear->ctf, 1u);
  EXPECT_EQ(lm.num_docs(), 2u);
  EXPECT_EQ(lm.total_term_count(), 4u);
  EXPECT_EQ(lm.vocabulary_size(), 2u);
}

TEST(LanguageModelTest, FindMissReturnsNull) {
  LanguageModel lm;
  lm.AddDocument({"x"});
  EXPECT_EQ(lm.Find("y"), nullptr);
  EXPECT_FALSE(lm.Contains("y"));
  EXPECT_TRUE(lm.Contains("x"));
}

TEST(LanguageModelTest, AvgTf) {
  TermStats s{4, 10};
  EXPECT_DOUBLE_EQ(s.avg_tf(), 2.5);
  TermStats zero{0, 0};
  EXPECT_DOUBLE_EQ(zero.avg_tf(), 0.0);
}

TEST(LanguageModelTest, AddTermAccumulates) {
  LanguageModel lm;
  lm.AddTerm("t", 2, 5);
  lm.AddTerm("t", 1, 3);
  const TermStats* s = lm.Find("t");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->df, 3u);
  EXPECT_EQ(s->ctf, 8u);
  EXPECT_EQ(lm.total_term_count(), 8u);
}

TEST(LanguageModelTest, MergeAddsBothSides) {
  LanguageModel a, b;
  a.AddDocument({"shared", "only_a"});
  b.AddDocument({"shared", "shared", "only_b"});
  a.Merge(b);
  EXPECT_EQ(a.Find("shared")->df, 2u);
  EXPECT_EQ(a.Find("shared")->ctf, 3u);
  EXPECT_NE(a.Find("only_a"), nullptr);
  EXPECT_NE(a.Find("only_b"), nullptr);
  EXPECT_EQ(a.num_docs(), 2u);
  EXPECT_EQ(a.total_term_count(), 5u);
}

TEST(LanguageModelTest, AddTermKeepsZeroCountTerms) {
  // A zero-df/zero-ctf term is a legitimate vocabulary entry (e.g. from
  // a store round trip); it must survive, not vanish or divide-by-zero.
  LanguageModel lm;
  lm.AddTerm("ghost", 0, 0);
  const TermStats* s = lm.Find("ghost");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->df, 0u);
  EXPECT_EQ(s->ctf, 0u);
  EXPECT_EQ(s->avg_tf(), 0.0);
  EXPECT_EQ(lm.vocabulary_size(), 1u);
  EXPECT_EQ(lm.total_term_count(), 0u);
}

TEST(LanguageModelTest, AddTermSaturatesInsteadOfWrapping) {
  LanguageModel lm;
  lm.AddTerm("t", UINT64_MAX - 1, UINT64_MAX - 1);
  lm.AddTerm("t", 5, 7);  // would wrap; must clamp
  const TermStats* s = lm.Find("t");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->df, UINT64_MAX);
  EXPECT_EQ(s->ctf, UINT64_MAX);
  EXPECT_EQ(lm.total_term_count(), UINT64_MAX);
}

TEST(LanguageModelTest, MergeSaturatesCounters) {
  LanguageModel a, b;
  a.AddTerm("t", UINT64_MAX, UINT64_MAX);
  a.set_num_docs(UINT64_MAX);
  b.AddTerm("t", 1, 1);
  b.set_num_docs(1);
  a.Merge(b);
  EXPECT_EQ(a.Find("t")->df, UINT64_MAX);
  EXPECT_EQ(a.Find("t")->ctf, UINT64_MAX);
  EXPECT_EQ(a.num_docs(), UINT64_MAX);
  EXPECT_EQ(a.total_term_count(), UINT64_MAX);
}

TEST(LanguageModelTest, MergeWithSelfDoublesEverything) {
  LanguageModel lm;
  lm.AddDocument({"x", "x", "y"});
  lm.AddDocument({"x"});
  lm.Merge(lm);  // aliasing merge: no iterator invalidation, no UB
  EXPECT_EQ(lm.Find("x")->df, 4u);
  EXPECT_EQ(lm.Find("x")->ctf, 6u);
  EXPECT_EQ(lm.Find("y")->df, 2u);
  EXPECT_EQ(lm.Find("y")->ctf, 2u);
  EXPECT_EQ(lm.num_docs(), 4u);
  EXPECT_EQ(lm.total_term_count(), 8u);
  EXPECT_EQ(lm.vocabulary_size(), 2u);
}

TEST(LanguageModelTest, MergeIntoEmptyCopiesSource) {
  LanguageModel empty, src;
  src.AddDocument({"a", "b", "a"});
  empty.Merge(src);
  EXPECT_EQ(empty.Find("a")->df, 1u);
  EXPECT_EQ(empty.Find("a")->ctf, 2u);
  EXPECT_EQ(empty.num_docs(), 1u);
  EXPECT_EQ(empty.total_term_count(), 3u);
  // And merging an empty model changes nothing.
  LanguageModel nothing;
  src.Merge(nothing);
  EXPECT_EQ(src.Find("a")->df, 1u);
  EXPECT_EQ(src.Find("a")->ctf, 2u);
  EXPECT_EQ(src.num_docs(), 1u);
  EXPECT_EQ(src.total_term_count(), 3u);
}

TEST(LanguageModelTest, RankedTermsOrdersByMetric) {
  LanguageModel lm;
  lm.AddTerm("high_df", 10, 10);
  lm.AddTerm("high_ctf", 2, 50);
  lm.AddTerm("rare", 1, 1);

  auto by_df = lm.RankedTerms(TermMetric::kDf);
  ASSERT_EQ(by_df.size(), 3u);
  EXPECT_EQ(by_df[0].first, "high_df");

  auto by_ctf = lm.RankedTerms(TermMetric::kCtf);
  EXPECT_EQ(by_ctf[0].first, "high_ctf");

  auto by_avg = lm.RankedTerms(TermMetric::kAvgTf);
  EXPECT_EQ(by_avg[0].first, "high_ctf");  // 50/2 = 25
}

TEST(LanguageModelTest, RankedTermsTopKAndTieBreak) {
  LanguageModel lm;
  lm.AddTerm("bb", 1, 5);
  lm.AddTerm("aa", 1, 5);
  lm.AddTerm("cc", 1, 9);
  auto top2 = lm.RankedTerms(TermMetric::kCtf, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, "cc");
  EXPECT_EQ(top2[1].first, "aa");  // lexicographic among ties
}

TEST(LanguageModelTest, StemCollapsedMergesVariants) {
  LanguageModel lm;
  lm.AddTerm("running", 3, 4);
  lm.AddTerm("runs", 2, 2);
  lm.AddTerm("run", 1, 1);
  LanguageModel stemmed = lm.StemCollapsed();
  const TermStats* s = stemmed.Find("run");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->ctf, 7u);
  EXPECT_EQ(s->df, 6u);  // upper bound: summed across variants
  EXPECT_EQ(stemmed.Find("running"), nullptr);
  EXPECT_EQ(stemmed.vocabulary_size(), 1u);
}

TEST(LanguageModelTest, WithoutStopwordsFilters) {
  LanguageModel lm;
  lm.AddDocument({"the", "apple", "of", "bear"});
  LanguageModel filtered = lm.WithoutStopwords(StopwordList::Default());
  EXPECT_EQ(filtered.vocabulary_size(), 2u);
  EXPECT_TRUE(filtered.Contains("apple"));
  EXPECT_FALSE(filtered.Contains("the"));
  EXPECT_EQ(filtered.total_term_count(), 2u);
}

TEST(LanguageModelTest, SaveLoadRoundTrip) {
  LanguageModel lm;
  lm.AddDocument({"apple", "apple", "bear"});
  lm.AddDocument({"cherry"});
  std::stringstream ss;
  ASSERT_TRUE(lm.Save(ss).ok());

  Result<LanguageModel> loaded = LanguageModel::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vocabulary_size(), 3u);
  EXPECT_EQ(loaded->num_docs(), 2u);
  EXPECT_EQ(loaded->Find("apple")->df, 1u);   // one doc contains "apple"
  EXPECT_EQ(loaded->Find("apple")->ctf, 2u);  // twice in that doc
  EXPECT_EQ(loaded->total_term_count(), lm.total_term_count());
}

TEST(LanguageModelTest, LoadRejectsMissingHeader) {
  std::stringstream ss("not a language model");
  EXPECT_TRUE(LanguageModel::Load(ss).status().IsCorruption());
}

TEST(LanguageModelTest, LoadRejectsTruncatedBody) {
  std::stringstream ss("#QBSLM v1\nnum_docs 5\nvocab 3\napple 1 2\n");
  Result<LanguageModel> r = LanguageModel::Load(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(LanguageModelTest, LoadRejectsInvalidStats) {
  // ctf < df is impossible (every containing doc has >= 1 occurrence).
  std::stringstream ss("#QBSLM v1\nnum_docs 1\nvocab 1\napple 5 2\n");
  EXPECT_TRUE(LanguageModel::Load(ss).status().IsCorruption());
}

TEST(LanguageModelTest, FromIndexMatchesIndexStats) {
  InvertedIndex index;
  index.AddDocument({"a", "a", "b"});
  index.AddDocument({"b", "c"});
  LanguageModel lm = LanguageModel::FromIndex(index);
  EXPECT_EQ(lm.vocabulary_size(), 3u);
  EXPECT_EQ(lm.num_docs(), 2u);
  EXPECT_EQ(lm.Find("a")->df, 1u);
  EXPECT_EQ(lm.Find("a")->ctf, 2u);
  EXPECT_EQ(lm.Find("b")->df, 2u);
  EXPECT_EQ(lm.total_term_count(), 5u);
}

TEST(LanguageModelTest, ForEachVisitsAllTerms) {
  LanguageModel lm;
  lm.AddDocument({"a", "b", "c"});
  int visits = 0;
  uint64_t df_total = 0;
  lm.ForEach([&](const std::string&, const TermStats& s) {
    ++visits;
    df_total += s.df;
  });
  EXPECT_EQ(visits, 3);
  EXPECT_EQ(df_total, 3u);
}

TEST(LmBuilderTest, RawBuilderKeepsStopwordsAndCase) {
  LmBuilder builder;  // Analyzer::Raw()
  builder.AddDocument("The Cat RUNS quickly");
  const LanguageModel& lm = builder.model();
  EXPECT_TRUE(lm.Contains("the"));
  EXPECT_TRUE(lm.Contains("runs"));      // unstemmed
  EXPECT_TRUE(lm.Contains("quickly"));   // unstemmed
  EXPECT_FALSE(lm.Contains("Cat"));      // lowercased
  EXPECT_TRUE(lm.Contains("cat"));
}

TEST(LmBuilderTest, InqueryBuilderStopsAndStems) {
  LmBuilder builder{Analyzer::InqueryLike()};
  builder.AddDocument("The databases are running");
  const LanguageModel& lm = builder.model();
  EXPECT_FALSE(lm.Contains("the"));
  EXPECT_TRUE(lm.Contains("databas"));
  EXPECT_TRUE(lm.Contains("run"));
}

TEST(LmBuilderTest, TakeModelLeavesBuilderEmpty) {
  LmBuilder builder;
  builder.AddDocument("one two");
  LanguageModel lm = builder.TakeModel();
  EXPECT_EQ(lm.vocabulary_size(), 2u);
  EXPECT_EQ(builder.model().vocabulary_size(), 0u);
  builder.AddDocument("three");
  EXPECT_EQ(builder.model().vocabulary_size(), 1u);
}

}  // namespace
}  // namespace qbs
